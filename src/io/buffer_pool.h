// An LRU buffer pool over the simulated disk. All index structures access
// pages through PageRef pins obtained here, so the pool's miss counter is
// exactly the number of I/O operations in the paper's cost model.
//
// Measurement protocol used by tests and benchmarks:
//   build structure -> pool.FlushAll() -> pool.EvictAll() -> pool.ResetStats()
//   -> run query -> pool.stats().misses  == cold-cache query I/Os.
//
// Concurrency model (DESIGN.md section 10). The read path — Fetch of
// already-written pages, PageRef::page() const access, Release, Prefetch —
// is safe from any number of threads. The page table is sharded (pages hash
// to shards by id; each shard owns a disjoint set of frames and its own
// mutex), pin counts and LRU ticks are atomics, and eviction scans only the
// requesting shard's frames, so readers on different shards never
// serialize. Everything that mutates pages or the page set — NewPage,
// FreePage, MarkDirty plus writes through page(), FlushAll, EvictAll,
// ResetStats, CheckInvariants — requires external synchronization: a single
// writer with no concurrent readers (quiescence). Stats are kept per shard
// and aggregated by stats(), so the miss counter still equals the paper's
// I/O count.
//
// Lock discipline (compile-time checked on Clang, DESIGN.md section 12).
// Each Shard::mu is a capability guarding that shard's page_table, stats,
// and the shard-owned frames' non-atomic metadata (Frame::id,
// Frame::prefetched). Shard mutexes are leaves and are never nested —
// every public method locks at most one shard at a time (the quiescent
// sweeps lock shards strictly one after another). Three fields
// deliberately live OUTSIDE the capability as atomics:
//   - Frame::pin_count: decremented lock-free by PageRef::Release from any
//     thread (taking the shard lock on every unpin would serialize readers
//     that never touch the page table); its release/acquire pairing with
//     the eviction scan is documented at the use sites.
//   - Frame::lru_tick: a monotonic recency stamp written on pin/unpin;
//     eviction reads it only for *unpinned* frames under the shard lock,
//     so a stale value can at worst pick a slightly older victim.
//   - Frame::dirty: set by MarkDirty through a pinned PageRef without the
//     shard lock; the pin itself keeps eviction away, and the unpin
//     release-store publishes it to the next eviction scan.
#ifndef SEGDB_IO_BUFFER_POOL_H_
#define SEGDB_IO_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "io/disk_manager.h"
#include "io/page.h"
#include "util/status.h"
#include "util/sync.h"

namespace segdb::io {

class BufferPool;

// RAII pin on a buffered page. While a PageRef is live the frame cannot be
// evicted. Move-only; releases the pin on destruction. Self-move-assignment
// is a no-op; a moved-from PageRef is !valid() and may be reassigned or
// Release()d freely.
class PageRef {
 public:
  PageRef() = default;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  PageRef(PageRef&& other) noexcept
      : pool_(other.pool_), frame_(other.frame_), page_id_(other.page_id_) {
    other.pool_ = nullptr;
  }
  PageRef& operator=(PageRef&& other) noexcept;
  ~PageRef() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }

  Page& page();
  const Page& page() const;

  // Marks the frame dirty so eviction/flush writes it back to disk.
  void MarkDirty();

  // Drops the pin early (idempotent).
  void Release();

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, size_t frame, PageId id)
      : pool_(pool), frame_(frame), page_id_(id) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_id_ = kInvalidPageId;
};

// Where dirty evictions go when a durability layer owns writeback ordering
// (NO-STEAL): instead of writing an uncommitted page to the device, the pool
// hands the bytes to the sink, re-fills later fetches from it, and defers
// device frees to it. io::DirtyPageSpill (wal.h) is the implementation; the
// pool sees only this interface so it does not depend on the WAL layer.
// Methods are called under a shard mutex — implementations must be
// internally synchronized and must not call back into the pool.
class WritebackSink {
 public:
  virtual ~WritebackSink() = default;

  // A dirty frame is being evicted: take ownership of the page's current
  // bytes (replacing any earlier spill of the same id). Must not fail —
  // the spill is RAM-to-RAM.
  virtual void CaptureEviction(PageId id, const Page& page) = 0;

  // If `id` was spilled, move its bytes into *out (removing the spill
  // entry) and return true. The caller marks the frame dirty: the device
  // copy is stale until commit-time writeback.
  virtual bool TakeSpilled(PageId id, Page* out) = 0;

  virtual bool Contains(PageId id) const = 0;

  // The pool is freeing `id`: drop any spilled bytes and remember the id so
  // the device-level free can be applied after the owning commit (keeping
  // the device free list a function of committed state only).
  virtual void DeferFree(PageId id) = 0;
};

struct BufferPoolStats {
  uint64_t fetches = 0;     // logical page requests
  uint64_t hits = 0;        // served from a resident frame
  uint64_t misses = 0;      // a demand read the paper's model charges
  uint64_t writebacks = 0;  // dirty evictions / flushes
  uint64_t prefetches = 0;  // pages staged by Prefetch (uncharged reads)
  uint64_t spills = 0;      // dirty evictions diverted to a WritebackSink
  // Compressed-tier counters (zero when the tier is disabled). A fetch is
  // exactly one of hit / miss / compressed_hit — a tier promotion avoids
  // the disk read, so it is deliberately NOT a miss in the paper's cost
  // model, and cold-protocol runs (EvictAll drops the tier too) are
  // unaffected by the tier's existence.
  uint64_t compressed_hits = 0;       // fetches served by decompressing
  uint64_t compressed_stores = 0;     // evicted pages stashed compressed
  uint64_t compressed_evictions = 0;  // tier entries dropped for budget
  // Gauges sampled by stats() from the live tier, not reset by ResetStats.
  uint64_t compressed_resident_pages = 0;
  uint64_t compressed_resident_bytes = 0;
};

struct BufferPoolOptions {
  // RAM budget (bytes, across all shards) for the compressed second tier:
  // pages evicted from frames are kept compressed in memory and a later
  // fetch decompresses them back instead of reading disk. 0 disables the
  // tier — the pool is then bit-for-bit the single-tier pool.
  size_t compressed_tier_bytes = 0;
};

class BufferPool {
 public:
  // `frame_count` bounds resident pages; fetching past it evicts LRU
  // unpinned frames. Small pools (< 2048 frames, i.e. every exactness
  // test) get a single shard and behave exactly like the pre-concurrency
  // pool, global LRU included. This two-argument form takes the compressed-
  // tier budget from the SEGDB_COMPRESSED_TIER_BYTES environment variable
  // (absent/0 = disabled) so whole test binaries can be re-run with the
  // tier on without touching every pool construction.
  BufferPool(DiskManager* disk, size_t frame_count);
  BufferPool(DiskManager* disk, size_t frame_count, BufferPoolOptions options);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  DiskManager* disk() { return disk_; }
  uint32_t page_size() const { return page_size_; }
  size_t frame_count() const { return frames_.size(); }
  size_t shard_count() const { return shards_.size(); }

  // Pins the page, reading it from disk on a miss. Thread-safe.
  Result<PageRef> Fetch(PageId id);

  // Allocates a fresh zeroed page on disk and pins it (dirty). Writer path.
  Result<PageRef> NewPage();

  // Frees a disk page. The page must not be pinned. Writer path.
  Status FreePage(PageId id);

  // Read-ahead hint: stages absent pages into *free* frames of their
  // shards, unpinned and uncharged — the first demand Fetch of a staged
  // page still counts one miss (the I/O the paper's model charges) but
  // needs no physical read. Never evicts; pages that don't fit or fail to
  // read are silently skipped. Thread-safe.
  //
  // Completion-based: frames are claimed first (pinned, `staging`), then
  // every claimed page is filled in ONE DiskManager::PeekPagesBatch — on
  // the file backend that is a single batched async submission through
  // the I/O scheduler — and installed as fills complete. Cold I/O counts
  // are unchanged: the batch is uncounted, and each staged page's miss is
  // still charged at its first demand Fetch.
  void Prefetch(std::span<const PageId> ids);

  // Writes back all dirty frames (pages stay resident). Quiescent only.
  Status FlushAll();

  // Writes back and drops every unpinned frame — simulates a cold cache.
  // Fails if any page is still pinned. Quiescent only.
  Status EvictAll();

  // Attaches (or detaches, with nullptr) the dirty-writeback sink. While a
  // sink is attached, dirty evictions spill to it instead of the device,
  // misses re-fill from it, and FreePage defers the device free to it —
  // the NO-STEAL discipline the WAL's recovery proof needs. FlushAll and
  // EvictAll deliberately still write to the device: they ARE the commit-
  // time writeback the sink exists to order. Quiescent only.
  void set_writeback_sink(WritebackSink* sink) { sink_ = sink; }
  WritebackSink* writeback_sink() const { return sink_; }

  // Copies every dirty resident frame into *out, ascending by page id (a
  // canonical order, so WAL byte streams are reproducible run-to-run).
  // Quiescent only; spilled pages are the sink's to report.
  void CollectDirty(std::vector<PageImage>* out) const;

  // Aggregates the per-shard counters. The sums reproduce exactly the
  // single-threaded counters for any serial trace.
  BufferPoolStats stats() const;
  void ResetStats();

  // Audits the pool: page-table/frame agreement, pin and LRU bookkeeping,
  // stats consistency, and clean resident frames matching their on-disk
  // contents (via DiskManager::PeekPage, so no I/O is counted). Takes each
  // shard's mutex while auditing it, so it may run concurrently with the
  // pure read path (Fetch/Release/Prefetch of clean pages) — PR 4 fixed
  // the lock-free shard walk the thread-safety annotations flagged. It
  // must still not overlap writers: the clean-frame-vs-disk byte compare
  // races with writes through a pinned PageRef, which no pool lock can
  // exclude.
  Status CheckInvariants() const;

 private:
  friend class PageRef;

  struct Frame {
    explicit Frame(uint32_t page_size) : page(page_size) {}
    Page page;
    PageId id = kInvalidPageId;
    std::atomic<int> pin_count{0};
    std::atomic<bool> dirty{false};
    // Resident via Prefetch but not yet demand-fetched: the first Fetch
    // charges the miss and clears this. Guarded by the owning shard's
    // mutex — a per-frame fact the annotation language cannot name from
    // here (the frame does not know its shard), so the guard is enforced
    // by SEGDB_REQUIRES on every helper that touches it instead of
    // SEGDB_GUARDED_BY.
    bool prefetched = false;
    // Claimed by an in-flight batched Prefetch: the frame holds the
    // stager's pin and its id, but is NOT in the page table until the
    // asynchronous fill completes and installs it (or releases the frame
    // on a failed read / lost race with a demand fetch). Same guard story
    // as `prefetched`.
    bool staging = false;
    std::atomic<uint64_t> lru_tick{0};
  };

  struct Shard {
    // mutable: stats() and CheckInvariants() aggregate under it from
    // const context.
    mutable util::Mutex mu;
    // page id -> global frame index; all mapped frames belong to `frames`.
    std::unordered_map<PageId, size_t> page_table SEGDB_GUARDED_BY(mu);
    // Global frame indices owned by the shard. Fixed at construction,
    // read-only afterwards — no guard needed.
    std::vector<size_t> frames;
    BufferPoolStats stats SEGDB_GUARDED_BY(mu);
    // Compressed second tier: evicted pages stashed as CompressPage bytes.
    // Disjoint from page_table by invariant (a promotion removes the entry
    // before the page re-enters a frame). ctier_fifo orders entries for
    // budget eviction, oldest stash first; it may carry stale ids (promoted
    // or freed entries leave their node behind), which eviction skips and a
    // periodic compaction drops.
    std::unordered_map<PageId, std::vector<uint8_t>> ctier
        SEGDB_GUARDED_BY(mu);
    std::deque<PageId> ctier_fifo SEGDB_GUARDED_BY(mu);
    uint64_t ctier_bytes SEGDB_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(PageId id) { return shards_[id % shards_.size()]; }
  uint64_t NextTick() {
    return tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  void Unpin(size_t frame);
  // Finds a free or evictable frame in `shard`; writes back the victim if
  // dirty, then stashes its bytes in the compressed tier (the stash comes
  // AFTER a successful writeback, so tier entries always equal disk).
  Result<size_t> GrabFrame(Shard& shard) SEGDB_REQUIRES(shard.mu);
  // Compresses `page` into the shard's tier under `id`, evicting oldest
  // entries past the per-shard budget. No-op when the tier is disabled.
  void StashCompressed(Shard& shard, PageId id, const Page& page)
      SEGDB_REQUIRES(shard.mu);
  // Drops `id` from the shard's tier if present (promotion, FreePage).
  void DropCompressed(Shard& shard, PageId id) SEGDB_REQUIRES(shard.mu);

  DiskManager* disk_;
  const uint32_t page_size_;  // hoisted off the disk for the fetch path
  // deque: Frame holds atomics (immovable), and element addresses must be
  // stable while other threads touch them.
  std::deque<Frame> frames_;
  std::vector<Shard> shards_;
  // Per-shard slice of BufferPoolOptions::compressed_tier_bytes (rounded
  // up); 0 disables the tier. Const after construction.
  size_t ctier_shard_budget_ = 0;
  // Set/cleared only while quiescent; read by the concurrent fetch path.
  // Not an atomic on purpose: attaching a sink mid-storm is outside the
  // pool's contract, same as every other writer-path operation.
  WritebackSink* sink_ = nullptr;
  std::atomic<uint64_t> tick_{0};
};

}  // namespace segdb::io

#endif  // SEGDB_IO_BUFFER_POOL_H_
