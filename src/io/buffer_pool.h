// An LRU buffer pool over the simulated disk. All index structures access
// pages through PageRef pins obtained here, so the pool's miss counter is
// exactly the number of I/O operations in the paper's cost model.
//
// Measurement protocol used by tests and benchmarks:
//   build structure -> pool.FlushAll() -> pool.EvictAll() -> pool.ResetStats()
//   -> run query -> pool.stats().misses  == cold-cache query I/Os.
#ifndef SEGDB_IO_BUFFER_POOL_H_
#define SEGDB_IO_BUFFER_POOL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "io/disk_manager.h"
#include "io/page.h"
#include "util/status.h"

namespace segdb::io {

class BufferPool;

// RAII pin on a buffered page. While a PageRef is live the frame cannot be
// evicted. Move-only; releases the pin on destruction.
class PageRef {
 public:
  PageRef() = default;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept;
  ~PageRef() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }

  Page& page();
  const Page& page() const;

  // Marks the frame dirty so eviction/flush writes it back to disk.
  void MarkDirty();

  // Drops the pin early (idempotent).
  void Release();

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, size_t frame, PageId id)
      : pool_(pool), frame_(frame), page_id_(id) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_id_ = kInvalidPageId;
};

struct BufferPoolStats {
  uint64_t fetches = 0;     // logical page requests
  uint64_t hits = 0;        // served from a resident frame
  uint64_t misses = 0;      // required a physical read
  uint64_t writebacks = 0;  // dirty evictions / flushes
};

class BufferPool {
 public:
  // `frame_count` bounds resident pages; fetching past it evicts LRU
  // unpinned frames.
  BufferPool(DiskManager* disk, size_t frame_count);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  DiskManager* disk() { return disk_; }
  uint32_t page_size() const { return disk_->page_size(); }
  size_t frame_count() const { return frames_.size(); }

  // Pins the page, reading it from disk on a miss.
  Result<PageRef> Fetch(PageId id);

  // Allocates a fresh zeroed page on disk and pins it (dirty).
  Result<PageRef> NewPage();

  // Frees a disk page. The page must not be pinned.
  Status FreePage(PageId id);

  // Writes back all dirty frames (pages stay resident).
  Status FlushAll();

  // Writes back and drops every unpinned frame — simulates a cold cache.
  // Fails if any page is still pinned.
  Status EvictAll();

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats(); }

  // Audits the pool: page-table/frame agreement, pin and LRU bookkeeping,
  // stats consistency, and clean resident frames matching their on-disk
  // contents (via DiskManager::PeekPage, so no I/O is counted).
  Status CheckInvariants() const;

 private:
  friend class PageRef;

  struct Frame {
    explicit Frame(uint32_t page_size) : page(page_size) {}
    Page page;
    PageId id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    uint64_t lru_tick = 0;
  };

  void Unpin(size_t frame);
  // Finds a free or evictable frame; writes back the victim if dirty.
  Result<size_t> GrabFrame();

  DiskManager* disk_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_table_;
  uint64_t tick_ = 0;
  BufferPoolStats stats_;
};

}  // namespace segdb::io

#endif  // SEGDB_IO_BUFFER_POOL_H_
