// Asynchronous block I/O against a real file descriptor, behind one
// interface so the rest of the tree never touches a syscall. Three
// engines implement it:
//
//   - io_uring ("uring"): raw-syscall submission/completion rings (no
//     liburing dependency) — one io_uring_enter can submit a whole batch
//     of page reads and the kernel completes them out of order. This is
//     the path that makes the paper's log_B terms pay off on a device:
//     B-sized transfers only beat binary search when the per-block
//     latency is overlapped, not serialized.
//   - thread pool ("threads"): N workers issuing pread/pwrite. Works on
//     every kernel (CI runners may lack io_uring or sandbox it away);
//     overlaps I/O via OS threads instead of a submission ring.
//   - synchronous ("sync"): one blocking syscall per op, queue depth 1.
//     Exists as the bench baseline: E14 measures batched engines against
//     exactly this.
//
// Selection is runtime: CreateAsyncIoEngine(kAuto) probes io_uring
// support and falls back to the thread pool; the SEGDB_IO_ENGINE
// environment variable (uring | threads | sync) overrides for tests/CI.
//
// Concurrency: an engine instance is externally synchronized — one
// caller drives Start/WaitOne at a time (io::FileDiskManager serializes
// behind its own mutex). The thread-pool engine is internally threaded
// but its public surface keeps the same single-driver contract.
#ifndef SEGDB_IO_ASYNC_IO_ENGINE_H_
#define SEGDB_IO_ASYNC_IO_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/status.h"

namespace segdb::io {

// One async operation: transfer `length` bytes between `buf` and the file
// at `offset`. The caller owns op and buffer until the op completes (is
// returned by WaitOne or a Start error). `status` is the completion
// result; short transfers are retried internally and surface only as
// kIoError if the file genuinely ends early.
struct IoOp {
  enum class Kind : uint8_t { kRead, kWrite };
  Kind kind = Kind::kRead;
  uint64_t offset = 0;
  uint32_t length = 0;
  uint8_t* buf = nullptr;
  Status status;
};

class AsyncIoEngine {
 public:
  virtual ~AsyncIoEngine() = default;

  AsyncIoEngine() = default;
  AsyncIoEngine(const AsyncIoEngine&) = delete;
  AsyncIoEngine& operator=(const AsyncIoEngine&) = delete;

  // "uring" | "threads" | "sync" — surfaced in bench telemetry.
  virtual const char* name() const = 0;

  // Maximum ops in flight. Start requires inflight() + ops.size() to fit.
  virtual uint32_t queue_depth() const = 0;
  virtual uint32_t inflight() const = 0;

  // Submits ops for execution. Returns non-OK only for submission-level
  // failures (over queue depth, ring submit error); per-op I/O errors are
  // reported through IoOp::status at completion. The sync engine executes
  // inline and makes every op immediately waitable.
  virtual Status Start(std::span<IoOp* const> ops) = 0;

  // Blocks until at least one in-flight op completes, then appends every
  // op completed so far to `completed` (each with status set). Requires
  // inflight() > 0.
  virtual Status WaitOne(std::vector<IoOp*>* completed) = 0;
};

enum class IoEngineKind : uint8_t { kAuto, kIoUring, kThreads, kSync };

struct AsyncIoEngineOptions {
  IoEngineKind kind = IoEngineKind::kAuto;
  // Submission ring size / max overlapped ops. The scheduler batches up
  // to this many page reads per submission wave.
  uint32_t queue_depth = 32;
  // Worker count for the thread-pool engine.
  uint32_t threads = 4;
};

// True if this kernel accepts io_uring ring setup (probed once).
bool IoUringSupported();

// Builds an engine over `fd` (not owned; must outlive the engine).
// kAuto resolves SEGDB_IO_ENGINE if set, else io_uring when supported,
// else the thread pool. Fails with kInvalidArgument for an explicit
// kIoUring on a kernel without support.
Result<std::unique_ptr<AsyncIoEngine>> CreateAsyncIoEngine(
    int fd, const AsyncIoEngineOptions& options = {});

// Drives `ops` through the engine respecting its queue depth and blocks
// until all complete. Returns the first submission-level error; per-op
// results land in each op's status.
Status RunToCompletion(AsyncIoEngine* engine, std::span<IoOp* const> ops);

// pread/pwrite with EINTR and short-transfer retry. The function-pointer
// seam lets tests inject syscall behaviors (EINTR storms, short reads)
// without a real flaky device; production callers pass nullptr for the
// real syscalls. Exposed here because the thread-pool engine and the
// FileDiskManager metadata path share them.
using PreadFn = long (*)(int fd, void* buf, unsigned long count,
                         long offset);
using PwriteFn = long (*)(int fd, const void* buf, unsigned long count,
                          long offset);
Status ReadFullAt(int fd, uint8_t* dst, size_t len, uint64_t offset,
                  PreadFn raw = nullptr);
Status WriteFullAt(int fd, const uint8_t* src, size_t len, uint64_t offset,
                   PwriteFn raw = nullptr);

}  // namespace segdb::io

#endif  // SEGDB_IO_ASYNC_IO_ENGINE_H_
