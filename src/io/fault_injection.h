// A DiskManager that injects deterministic, seeded faults between the
// buffer pool and the backing store. The paper's cost model counts I/Os; a
// production-scale segment store must also survive I/Os that *fail*. This
// wrapper simulates the transient failure modes of a real device —
//   - transient read errors (ReadPage / PeekPage return kIoError),
//   - clean write failures (WritePage returns kIoError, no bytes stored),
//   - torn writes (a random prefix of the page reaches the platter, then
//     kIoError),
//   - allocation failures and device exhaustion (AllocatePage returns
//     kIoError / kResourceExhausted)
// — all drawn from a seeded util Rng, so any failing run replays
// bit-identically from its seed. FreePage is deliberately NOT faultable:
// it is a metadata operation on the device, and rollback / rebuild paths
// depend on returning pages unconditionally.
//
// The wrapper composes over any DiskManager backend. The historical
// one-argument form owns a SimDiskManager; the composing form takes a
// non-owned base — pointing it at a FileDiskManager injects the same
// seeded fault stream above the async engine, and a torn write genuinely
// truncates the file write (via DiskManager::WritePagePrefix). Because
// faults are decided *above* the device, a sim-backed and a file-backed
// run with the same plan and op sequence observe identical fault streams
// (ops_seen / faults_injected match bit-for-bit).
//
// The fault plan is probabilistic (per-op rates) plus a one-shot scheduled
// fault (`ScheduleFailAtOp`) for pinpointing "what if exactly the K-th disk
// op fails" in targeted tests. `set_enabled(false)` pauses all injection —
// harnesses use this to audit structures and retry failed ops over a
// temporarily reliable device without disturbing the fault stream's
// determinism (paused ops are not counted and draw nothing from the Rng).
//
// Thread-safety: all faultable entry points serialize on an internal mutex
// guarding the Rng and counters, so the wrapper is safe wherever the base
// DiskManager is. In a serial run the fault sequence is a pure function of
// (plan, op sequence).
#ifndef SEGDB_IO_FAULT_INJECTION_H_
#define SEGDB_IO_FAULT_INJECTION_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "io/disk_manager.h"
#include "io/page.h"
#include "util/random.h"
#include "util/status.h"
#include "util/sync.h"

namespace segdb::io {

// Knobs for FaultInjectingDiskManager. All rates are per-operation
// probabilities in [0, 1]; the default plan injects nothing.
struct FaultPlan {
  // Seeds the fault stream. Two wrappers with the same plan observing the
  // same operation sequence inject identical faults.
  uint64_t seed = 0;
  // ReadPage / PeekPage fail with kIoError (no bytes copied out).
  double read_fault_rate = 0.0;
  // WritePage fails with kIoError before any byte reaches the store.
  double write_fault_rate = 0.0;
  // WritePage stores a random non-empty strict prefix of the page (the rest
  // of the stored page keeps its old bytes), then fails with kIoError.
  double torn_write_rate = 0.0;
  // AllocatePage fails with kIoError (transient; a retry may succeed).
  double alloc_fault_rate = 0.0;
  // Sync fails with kIoError: the durability barrier did not happen, so
  // writes issued since the last successful Sync stay vulnerable to
  // CrashLoseUnsynced(). The base device is NOT synced on a faulted
  // barrier.
  double sync_fault_rate = 0.0;
  // Hard cap on successful allocations while injection is enabled; once
  // spent, AllocatePage returns kResourceExhausted until faults are
  // disabled or the budget is raised. Models a full device.
  uint64_t alloc_budget = std::numeric_limits<uint64_t>::max();
};

class FaultInjectingDiskManager : public DiskManager {
 public:
  // Owns a fresh SimDiskManager of the given page size (the historical
  // form: a faulty simulated device).
  FaultInjectingDiskManager(uint32_t page_size_bytes, const FaultPlan& plan)
      : FaultInjectingDiskManager(
            std::make_unique<SimDiskManager>(page_size_bytes), plan) {}

  // Composes over a caller-owned backend (sim or file). `base` must
  // outlive the wrapper.
  FaultInjectingDiskManager(DiskManager* base, const FaultPlan& plan)
      : DiskManager(base->page_size()), base_(base), plan_(plan),
        rng_(plan.seed) {}

  // Composes over an owned backend.
  FaultInjectingDiskManager(std::unique_ptr<DiskManager> base,
                            const FaultPlan& plan)
      : DiskManager(base->page_size()), owned_(std::move(base)),
        base_(owned_.get()), plan_(plan), rng_(plan.seed) {}

  // The backend the faults sit above (audit and repair paths in harnesses
  // may want uninjected access; prefer set_enabled(false) so the op stream
  // stays visible to ops_seen()).
  DiskManager* base() { return base_; }

  // Pauses / resumes injection. While disabled, operations pass straight
  // through: they are not counted in ops_seen() and consume no randomness.
  void set_enabled(bool enabled) {
    util::MutexLock lock(&mu_);
    enabled_ = enabled;
  }
  bool enabled() const {
    util::MutexLock lock(&mu_);
    return enabled_;
  }

  // One-shot: the k-th faultable operation observed from now (k=1 means the
  // very next one) fails with kIoError, regardless of the probabilistic
  // rates. Requires k >= 1. Only ticks down while injection is enabled;
  // scheduling replaces any earlier unexpired schedule.
  void ScheduleFailAtOp(uint64_t k) {
    SEGDB_CHECK(k >= 1) << "ScheduleFailAtOp is 1-based";
    util::MutexLock lock(&mu_);
    scheduled_countdown_ = k;
    scheduled_torn_ = false;
  }

  // Like ScheduleFailAtOp, but if the k-th faultable op is a page write it
  // tears: a random non-empty strict prefix reaches the store before the
  // kIoError. Non-write ops at k fail cleanly. The crash-recovery sweeps
  // use this to land a torn write on whatever the device happens to be
  // writing at op k (WAL tail pages included).
  void ScheduleTornFailAtOp(uint64_t k) {
    SEGDB_CHECK(k >= 1) << "ScheduleTornFailAtOp is 1-based";
    util::MutexLock lock(&mu_);
    scheduled_countdown_ = k;
    scheduled_torn_ = true;
  }

  // Power-loss modeling. While tracking is on, the wrapper snapshots each
  // page's pre-write bytes on the first write since the last successful
  // Sync; CrashLoseUnsynced() rolls every such page back to its snapshot —
  // i.e. drops ALL unsynced writes, the multi-page analogue of a torn
  // single-page write. Snapshots bypass Decide (no ops counted, no Rng
  // draws), so arming tracking does not perturb the fault stream.
  void set_track_unsynced(bool on) {
    util::MutexLock lock(&mu_);
    track_unsynced_ = on;
    if (!on) unsynced_.clear();
  }
  uint64_t unsynced_pages() const {
    util::MutexLock lock(&mu_);
    return unsynced_.size();
  }
  void CrashLoseUnsynced();

  // Faultable operations observed while enabled (alloc/read/peek/write;
  // FreePage is never counted).
  uint64_t ops_seen() const {
    util::MutexLock lock(&mu_);
    return ops_seen_;
  }
  uint64_t faults_injected() const {
    util::MutexLock lock(&mu_);
    return faults_injected_;
  }

  // Replaces the plan and reseeds the fault stream. Counters are kept.
  void ResetPlan(const FaultPlan& plan) {
    util::MutexLock lock(&mu_);
    plan_ = plan;
    rng_ = Rng(plan.seed);
    allocs_granted_ = 0;
    scheduled_countdown_.reset();
  }

  Result<PageId> AllocatePage() override;
  Status FreePage(PageId id) override;  // reliable by contract: delegates
  Status ReadPage(PageId id, Page* out) override;
  Status PeekPage(PageId id, Page* out) const override;
  Status WritePage(PageId id, const Page& page) override;
  Status WritePagePrefix(PageId id, const Page& page,
                         uint32_t prefix_bytes) override;
  Status Sync() override;
  void PeekPagesBatch(std::span<PageFill> fills) override;
  void PrefetchPages(std::span<const PageId> ids) override;
  uint64_t pages_in_use() const override { return base_->pages_in_use(); }
  uint64_t high_water_pages() const override {
    return base_->high_water_pages();
  }
  // The wrapper's own counter block is never touched; the model's I/O
  // accounting lives in the backend.
  DiskStats stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

 private:
  enum class Op { kAlloc, kRead, kPeek, kWrite, kSync };

  // Decides the fate of one faultable op. Returns OK to pass through; a
  // non-OK status to inject. For writes, sets *torn_prefix_bytes > 0 when a
  // prefix of the page should reach the store before the failure.
  Status Decide(Op op, PageId id, uint32_t* torn_prefix_bytes) const
      SEGDB_REQUIRES(mu_);

  // Records the page's current base-device bytes as its pre-write snapshot
  // (first write since the last successful Sync). Reads the base without a
  // Decide — tracking is invisible to the fault stream and the counters.
  void SnapshotPreImage(PageId id);

  std::unique_ptr<DiskManager> owned_;
  DiskManager* const base_;
  mutable util::Mutex mu_;
  FaultPlan plan_ SEGDB_GUARDED_BY(mu_);
  // mutable: PeekPage is const but draws from the fault stream.
  mutable Rng rng_ SEGDB_GUARDED_BY(mu_);
  bool enabled_ SEGDB_GUARDED_BY(mu_) = true;
  mutable uint64_t ops_seen_ SEGDB_GUARDED_BY(mu_) = 0;
  mutable uint64_t faults_injected_ SEGDB_GUARDED_BY(mu_) = 0;
  uint64_t allocs_granted_ SEGDB_GUARDED_BY(mu_) = 0;
  mutable std::optional<uint64_t> scheduled_countdown_ SEGDB_GUARDED_BY(mu_);
  mutable bool scheduled_torn_ SEGDB_GUARDED_BY(mu_) = false;
  bool track_unsynced_ SEGDB_GUARDED_BY(mu_) = false;
  // Pre-write snapshots of pages written since the last successful Sync
  // (ordered map: CrashLoseUnsynced restores in deterministic id order).
  std::map<PageId, std::vector<uint8_t>> unsynced_ SEGDB_GUARDED_BY(mu_);
};

}  // namespace segdb::io

#endif  // SEGDB_IO_FAULT_INJECTION_H_
