#include "io/recovery.h"

#include <cstring>
#include <utility>

#include "io/wal.h"
#include "util/status.h"

namespace segdb::io {

Result<RecoveryResult> Recover(DiskManager* disk, PageId anchor) {
  Result<WriteAheadLog::ChainState> chain =
      WriteAheadLog::ReadChain(disk, anchor);
  if (!chain.ok()) return chain.status();
  const WriteAheadLog::ChainState& state = chain.value();

  RecoveryResult result;
  result.records_scanned = state.records.size();
  result.torn_tail_bytes = state.torn_tail_bytes;

  // Forward redo pass. Images are buffered until their commit record
  // lands: a transaction whose commit fell in the torn tail contributes
  // nothing to the device.
  std::vector<std::pair<PageId, const std::vector<uint8_t>*>> pending;
  for (const WriteAheadLog::ParsedRecord& record : state.records) {
    if (record.type == WriteAheadLog::kRecordPageImage) {
      if (record.payload.size() < sizeof(PageId) ||
          record.payload.size() != sizeof(PageId) + disk->page_size()) {
        return Status::Corruption("WAL page-image record has a bad size");
      }
      PageId id = kInvalidPageId;
      std::memcpy(&id, record.payload.data(), sizeof(id));
      pending.emplace_back(id, &record.payload);
      continue;
    }
    // Commit record: write every buffered image to its home location.
    for (const auto& [id, payload] : pending) {
      Page page(disk->page_size());
      std::memcpy(page.data(), payload->data() + sizeof(PageId),
                  disk->page_size());
      Status s = disk->WritePage(id, page);
      if (s.ok()) {
        ++result.images_applied;
      } else if (s.code() == StatusCode::kInvalidArgument) {
        // Dead id: the page was freed after this commit's barrier (frees
        // are reliable metadata and only applied post-commit), so the
        // committed free supersedes the image.
        ++result.images_skipped_dead;
      } else {
        return s;
      }
    }
    pending.clear();
    RecoveredCommit commit;
    commit.lsn = record.lsn;
    commit.payload = record.payload;
    result.commits.push_back(std::move(commit));
  }
  result.discarded_uncommitted_images = pending.size();

  // Barrier the replayed pages, then retire the chain under a fresh
  // generation. Order matters: the anchor swap must not land before the
  // redo writes are durable.
  SEGDB_RETURN_IF_ERROR(disk->Sync());
  Result<PageId> fresh_head = disk->AllocatePage();
  if (!fresh_head.ok()) return fresh_head.status();
  SEGDB_RETURN_IF_ERROR(WriteAheadLog::PublishAnchor(
      disk, anchor, state.generation + 1, fresh_head.value()));
  for (PageId id : state.pages) disk->FreePage(id).IgnoreError();
  if (state.tail_next != kInvalidPageId) {
    // The pre-allocated (possibly part-written) page past the valid tail.
    disk->FreePage(state.tail_next).IgnoreError();
  }
  result.generation = state.generation + 1;
  return result;
}

}  // namespace segdb::io
