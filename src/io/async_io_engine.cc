#include "io/async_io_engine.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "util/sync.h"
#include "util/thread_pool.h"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define SEGDB_HAS_IO_URING 1
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#endif

#include <unistd.h>

#include <atomic>

namespace segdb::io {

namespace {

std::string ErrnoMsg(const char* what, int err) {
  std::string msg = what;
  msg += ": ";
  msg += std::strerror(err);
  return msg;
}

}  // namespace

// ---------------------------------------------------------------------------
// Retrying positional read/write (shared by the thread-pool engine and the
// FileDiskManager metadata path).
// ---------------------------------------------------------------------------

Status ReadFullAt(int fd, uint8_t* dst, size_t len, uint64_t offset,
                  PreadFn raw) {
  if (raw == nullptr) {
    raw = [](int f, void* b, unsigned long n, long off) -> long {
      return ::pread(f, b, n, off);
    };
  }
  size_t done = 0;
  while (done < len) {
    long n = raw(fd, dst + done, len - done,
                 static_cast<long>(offset + done));
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;  // retryable
      return Status::IoError(ErrnoMsg("pread", errno));
    }
    if (n == 0) {
      return Status::IoError("pread: unexpected end of file");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteFullAt(int fd, const uint8_t* src, size_t len, uint64_t offset,
                   PwriteFn raw) {
  if (raw == nullptr) {
    raw = [](int f, const void* b, unsigned long n, long off) -> long {
      return ::pwrite(f, b, n, off);
    };
  }
  size_t done = 0;
  while (done < len) {
    long n = raw(fd, src + done, len - done,
                 static_cast<long>(offset + done));
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;  // retryable
      return Status::IoError(ErrnoMsg("pwrite", errno));
    }
    if (n == 0) {
      return Status::IoError("pwrite: wrote zero bytes");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

namespace {

// ---------------------------------------------------------------------------
// Synchronous engine: one blocking syscall per op. The E14 bench baseline.
// ---------------------------------------------------------------------------

class SyncIoEngine final : public AsyncIoEngine {
 public:
  explicit SyncIoEngine(int fd) : fd_(fd) {}

  const char* name() const override { return "sync"; }
  uint32_t queue_depth() const override { return 1; }
  uint32_t inflight() const override {
    return static_cast<uint32_t>(done_.size());
  }

  Status Start(std::span<IoOp* const> ops) override {
    for (IoOp* op : ops) {
      op->status = op->kind == IoOp::Kind::kRead
                       ? ReadFullAt(fd_, op->buf, op->length, op->offset)
                       : WriteFullAt(fd_, op->buf, op->length, op->offset);
      done_.push_back(op);
    }
    return Status::OK();
  }

  Status WaitOne(std::vector<IoOp*>* completed) override {
    if (done_.empty()) {
      return Status::FailedPrecondition("WaitOne with no ops in flight");
    }
    completed->insert(completed->end(), done_.begin(), done_.end());
    done_.clear();
    return Status::OK();
  }

 private:
  const int fd_;
  std::vector<IoOp*> done_;
};

// ---------------------------------------------------------------------------
// Thread-pool engine: overlaps I/O with N workers issuing pread/pwrite.
// ---------------------------------------------------------------------------

class ThreadPoolIoEngine final : public AsyncIoEngine {
 public:
  ThreadPoolIoEngine(int fd, uint32_t threads, uint32_t queue_depth)
      : fd_(fd), depth_(queue_depth), pool_(threads) {}

  ~ThreadPoolIoEngine() override {
    // Drain before the pool joins: queued tasks reference this object.
    std::vector<IoOp*> sink;
    while (inflight() > 0) WaitOne(&sink).IgnoreError();
  }

  const char* name() const override { return "threads"; }
  uint32_t queue_depth() const override { return depth_; }
  uint32_t inflight() const override {
    return inflight_.load(std::memory_order_acquire);
  }

  Status Start(std::span<IoOp* const> ops) override {
    if (inflight() + ops.size() > depth_) {
      return Status::FailedPrecondition("Start would exceed queue depth");
    }
    inflight_.fetch_add(static_cast<uint32_t>(ops.size()),
                        std::memory_order_acq_rel);
    for (IoOp* op : ops) {
      pool_.Submit([this, op] {
        op->status = op->kind == IoOp::Kind::kRead
                         ? ReadFullAt(fd_, op->buf, op->length, op->offset)
                         : WriteFullAt(fd_, op->buf, op->length, op->offset);
        {
          util::MutexLock lock(&mu_);
          done_.push_back(op);
        }
        cv_.NotifyOne();
      });
    }
    return Status::OK();
  }

  Status WaitOne(std::vector<IoOp*>* completed) override {
    if (inflight() == 0) {
      return Status::FailedPrecondition("WaitOne with no ops in flight");
    }
    size_t drained;
    {
      util::MutexLock lock(&mu_);
      // Deadline polling lives above the engine (the scheduler times out
      // submissions, not completions), so this wait is exempt.
      // SEMA-OK: device-completion wait; blocks until an in-flight op ends
      while (done_.empty()) cv_.Wait(mu_);
      drained = done_.size();
      completed->insert(completed->end(), done_.begin(), done_.end());
      done_.clear();
    }
    inflight_.fetch_sub(static_cast<uint32_t>(drained),
                        std::memory_order_acq_rel);
    return Status::OK();
  }

 private:
  const int fd_;
  const uint32_t depth_;
  std::atomic<uint32_t> inflight_{0};
  util::Mutex mu_;
  util::CondVar cv_;
  std::vector<IoOp*> done_ SEGDB_GUARDED_BY(mu_);
  util::ThreadPool pool_;  // last member: joins before the rest destructs
};

#ifdef SEGDB_HAS_IO_URING

// ---------------------------------------------------------------------------
// io_uring engine over raw syscalls (no liburing). Single-driver contract
// means no locking: only the ring head/tail words shared with the kernel
// need atomic access (std::atomic_ref with acquire/release, mirroring the
// kernel's smp_load_acquire / smp_store_release pairing).
// ---------------------------------------------------------------------------

int SysIoUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

class UringIoEngine final : public AsyncIoEngine {
 public:
  static Result<std::unique_ptr<AsyncIoEngine>> Create(int fd,
                                                       uint32_t queue_depth) {
    auto engine = std::unique_ptr<UringIoEngine>(new UringIoEngine(fd));
    SEGDB_RETURN_IF_ERROR(engine->Init(queue_depth));
    return {std::move(engine)};
  }

  ~UringIoEngine() override {
    if (sq_mem_ != MAP_FAILED) ::munmap(sq_mem_, sq_bytes_);
    if (cq_mem_ != MAP_FAILED && cq_mem_ != sq_mem_) {
      ::munmap(cq_mem_, cq_bytes_);
    }
    if (sqe_mem_ != MAP_FAILED) ::munmap(sqe_mem_, sqe_bytes_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  const char* name() const override { return "uring"; }
  uint32_t queue_depth() const override { return depth_; }
  uint32_t inflight() const override { return inflight_; }

  Status Start(std::span<IoOp* const> ops) override {
    if (inflight_ + ops.size() > depth_) {
      return Status::FailedPrecondition("Start would exceed queue depth");
    }
    for (IoOp* op : ops) {
      uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot] = Slot{op, 0};
      PushSqe(slot);
      ++inflight_;
    }
    return Submit(static_cast<unsigned>(ops.size()));
  }

  Status WaitOne(std::vector<IoOp*>* completed) override {
    if (inflight_ == 0) {
      return Status::FailedPrecondition("WaitOne with no ops in flight");
    }
    size_t before = completed->size();
    // Deadline polling lives above the engine (the scheduler times out
    // submissions, not completions), so this wait is exempt.
    // SEMA-OK: device-completion wait; blocks in io_uring_enter until done
    while (completed->size() == before) {
      int rc = SysIoUringEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
      if (rc < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(ErrnoMsg("io_uring_enter(wait)", errno));
      }
      SEGDB_RETURN_IF_ERROR(Reap(completed));
    }
    return Status::OK();
  }

 private:
  struct Slot {
    IoOp* op = nullptr;
    uint32_t done = 0;  // bytes transferred so far (short-transfer resume)
  };

  explicit UringIoEngine(int fd) : file_fd_(fd) {}

  Status Init(uint32_t queue_depth) {
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    ring_fd_ = SysIoUringSetup(queue_depth, &params);
    if (ring_fd_ < 0) {
      return Status::IoError(ErrnoMsg("io_uring_setup", errno));
    }
    depth_ = params.sq_entries;  // kernel may round up; use what it gave us
    sq_bytes_ = params.sq_off.array + params.sq_entries * sizeof(uint32_t);
    cq_bytes_ =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap && cq_bytes_ > sq_bytes_) sq_bytes_ = cq_bytes_;
    sq_mem_ = ::mmap(nullptr, sq_bytes_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_mem_ == MAP_FAILED) {
      return Status::IoError(ErrnoMsg("mmap(sq ring)", errno));
    }
    if (single_mmap) {
      cq_mem_ = sq_mem_;
    } else {
      cq_mem_ = ::mmap(nullptr, cq_bytes_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, ring_fd_,
                       IORING_OFF_CQ_RING);
      if (cq_mem_ == MAP_FAILED) {
        return Status::IoError(ErrnoMsg("mmap(cq ring)", errno));
      }
    }
    sqe_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
    sqe_mem_ = ::mmap(nullptr, sqe_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
    if (sqe_mem_ == MAP_FAILED) {
      return Status::IoError(ErrnoMsg("mmap(sqes)", errno));
    }

    auto* sq = static_cast<uint8_t*>(sq_mem_);
    sq_head_ = reinterpret_cast<uint32_t*>(sq + params.sq_off.head);
    sq_tail_ = reinterpret_cast<uint32_t*>(sq + params.sq_off.tail);
    sq_mask_ = *reinterpret_cast<uint32_t*>(sq + params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<uint32_t*>(sq + params.sq_off.array);
    auto* cq = static_cast<uint8_t*>(cq_mem_);
    cq_head_ = reinterpret_cast<uint32_t*>(cq + params.cq_off.head);
    cq_tail_ = reinterpret_cast<uint32_t*>(cq + params.cq_off.tail);
    cq_mask_ = *reinterpret_cast<uint32_t*>(cq + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);
    sqes_ = static_cast<io_uring_sqe*>(sqe_mem_);

    slots_.resize(depth_);
    free_slots_.reserve(depth_);
    for (uint32_t i = 0; i < depth_; ++i) {
      free_slots_.push_back(depth_ - 1 - i);
    }
    return Status::OK();
  }

  // Queues one SQE resuming the slot's op at its current progress. The
  // caller advances the tail visible to the kernel via Submit().
  void PushSqe(uint32_t slot) {
    const Slot& s = slots_[slot];
    uint32_t tail = std::atomic_ref<uint32_t>(*sq_tail_).load(
        std::memory_order_relaxed);
    uint32_t index = tail & sq_mask_;
    io_uring_sqe& sqe = sqes_[index];
    std::memset(&sqe, 0, sizeof(sqe));
    sqe.opcode = s.op->kind == IoOp::Kind::kRead ? IORING_OP_READ
                                                 : IORING_OP_WRITE;
    sqe.fd = file_fd_;
    sqe.addr = reinterpret_cast<uint64_t>(s.op->buf + s.done);
    sqe.len = s.op->length - s.done;
    sqe.off = s.op->offset + s.done;
    sqe.user_data = slot;
    sq_array_[index] = index;
    std::atomic_ref<uint32_t>(*sq_tail_).store(tail + 1,
                                               std::memory_order_release);
  }

  Status Submit(unsigned to_submit) {
    while (to_submit > 0) {
      int rc = SysIoUringEnter(ring_fd_, to_submit, 0, 0);
      if (rc < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        return Status::IoError(ErrnoMsg("io_uring_enter(submit)", errno));
      }
      to_submit -= static_cast<unsigned>(rc);
    }
    return Status::OK();
  }

  // Drains the completion ring. Short transfers and EINTR-class results
  // are resubmitted from where they left off; finished ops are appended
  // to `completed`.
  Status Reap(std::vector<IoOp*>* completed) {
    unsigned resubmits = 0;
    uint32_t head = std::atomic_ref<uint32_t>(*cq_head_).load(
        std::memory_order_relaxed);
    for (;;) {  // SEMA-LOOP: bounded (drains at most cq-ring-size entries)
      uint32_t tail = std::atomic_ref<uint32_t>(*cq_tail_).load(
          std::memory_order_acquire);
      if (head == tail) break;
      const io_uring_cqe& cqe = cqes_[head & cq_mask_];
      uint32_t slot = static_cast<uint32_t>(cqe.user_data);
      Slot& s = slots_[slot];
      int32_t res = cqe.res;
      ++head;
      std::atomic_ref<uint32_t>(*cq_head_).store(head,
                                                 std::memory_order_release);
      if (res == -EINTR || res == -EAGAIN) {
        PushSqe(slot);
        ++resubmits;
        continue;
      }
      if (res < 0) {
        s.op->status = Status::IoError(ErrnoMsg(
            s.op->kind == IoOp::Kind::kRead ? "uring read" : "uring write",
            -res));
      } else {
        s.done += static_cast<uint32_t>(res);
        if (res == 0 && s.done < s.op->length) {
          s.op->status = Status::IoError("uring: unexpected end of file");
        } else if (s.done < s.op->length) {
          PushSqe(slot);  // short transfer: resume the remainder
          ++resubmits;
          continue;
        } else {
          s.op->status = Status::OK();
        }
      }
      completed->push_back(s.op);
      free_slots_.push_back(slot);
      --inflight_;
    }
    if (resubmits > 0) return Submit(resubmits);
    return Status::OK();
  }

  const int file_fd_;
  int ring_fd_ = -1;
  uint32_t depth_ = 0;
  void* sq_mem_ = MAP_FAILED;
  void* cq_mem_ = MAP_FAILED;
  void* sqe_mem_ = MAP_FAILED;
  size_t sq_bytes_ = 0;
  size_t cq_bytes_ = 0;
  size_t sqe_bytes_ = 0;
  uint32_t* sq_head_ = nullptr;
  uint32_t* sq_tail_ = nullptr;
  uint32_t sq_mask_ = 0;
  uint32_t* sq_array_ = nullptr;
  uint32_t* cq_head_ = nullptr;
  uint32_t* cq_tail_ = nullptr;
  uint32_t cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  uint32_t inflight_ = 0;
};

#endif  // SEGDB_HAS_IO_URING

}  // namespace

bool IoUringSupported() {
#ifdef SEGDB_HAS_IO_URING
  static const bool supported = [] {
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    int fd = SysIoUringSetup(1, &params);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return supported;
#else
  return false;
#endif
}

Result<std::unique_ptr<AsyncIoEngine>> CreateAsyncIoEngine(
    int fd, const AsyncIoEngineOptions& options) {
  IoEngineKind kind = options.kind;
  if (kind == IoEngineKind::kAuto) {
    if (const char* env = std::getenv("SEGDB_IO_ENGINE")) {
      std::string v = env;
      if (v == "uring" || v == "io_uring") {
        kind = IoEngineKind::kIoUring;
      } else if (v == "threads") {
        kind = IoEngineKind::kThreads;
      } else if (v == "sync") {
        kind = IoEngineKind::kSync;
      } else if (!v.empty()) {
        return Status::InvalidArgument(
            "SEGDB_IO_ENGINE must be uring|threads|sync");
      }
    }
  }
  if (kind == IoEngineKind::kAuto) {
    kind = IoUringSupported() ? IoEngineKind::kIoUring
                              : IoEngineKind::kThreads;
  }
  if (options.queue_depth == 0) {
    return Status::InvalidArgument("queue_depth must be positive");
  }
  switch (kind) {
    case IoEngineKind::kIoUring:
#ifdef SEGDB_HAS_IO_URING
      if (!IoUringSupported()) {
        return Status::InvalidArgument(
            "io_uring engine requested but the kernel rejects ring setup");
      }
      return UringIoEngine::Create(fd, options.queue_depth);
#else
      return Status::InvalidArgument(
          "io_uring engine requested but built without <linux/io_uring.h>");
#endif
    case IoEngineKind::kThreads: {
      if (options.threads == 0) {
        return Status::InvalidArgument("threads must be positive");
      }
      return {std::make_unique<ThreadPoolIoEngine>(fd, options.threads,
                                                   options.queue_depth)};
    }
    case IoEngineKind::kSync:
      return {std::make_unique<SyncIoEngine>(fd)};
    case IoEngineKind::kAuto:
      break;
  }
  return Status::Internal("unreachable engine kind");
}

Status RunToCompletion(AsyncIoEngine* engine, std::span<IoOp* const> ops) {
  std::vector<IoOp*> completed;
  size_t next = 0;
  while (next < ops.size() || engine->inflight() > 0) {
    uint32_t room = engine->queue_depth() - engine->inflight();
    if (room > 0 && next < ops.size()) {
      size_t take = std::min<size_t>(room, ops.size() - next);
      SEGDB_RETURN_IF_ERROR(engine->Start(ops.subspan(next, take)));
      next += take;
    }
    if (engine->inflight() > 0) {
      SEGDB_RETURN_IF_ERROR(engine->WaitOne(&completed));
    }
  }
  return Status::OK();
}

}  // namespace segdb::io
