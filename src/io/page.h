// A disk page: a raw byte buffer of the DiskManager's configured size.
// Index structures lay out typed records inside pages with the ReadAt /
// WriteAt helpers (memcpy-based, so layouts stay trivially serializable).
#ifndef SEGDB_IO_PAGE_H_
#define SEGDB_IO_PAGE_H_

#include <cstdint>
#include <cstring>
#include <limits>
#include <type_traits>
#include <vector>

#include "util/check.h"

namespace segdb::io {

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

class Page {
 public:
  explicit Page(uint32_t size_bytes) : data_(size_bytes) {}

  Page(const Page&) = default;
  Page& operator=(const Page&) = default;
  Page(Page&&) = default;
  Page& operator=(Page&&) = default;

  uint32_t size() const { return static_cast<uint32_t>(data_.size()); }
  uint8_t* data() { return data_.data(); }
  const uint8_t* data() const { return data_.data(); }

  void Zero() { std::memset(data_.data(), 0, data_.size()); }

  // Reads a trivially-copyable T stored at byte offset `off`.
  // Bounds checks are evaluated in uint64_t: `off + sizeof(T) * count` in
  // the operand types could wrap before the compare (uint32_t count, and
  // size_t is only guaranteed 32 bits) and accept an out-of-page access.
  template <typename T>
  T ReadAt(uint32_t off) const {
    static_assert(std::is_trivially_copyable_v<T>);
    SEGDB_DCHECK(uint64_t{off} + sizeof(T) <= data_.size());
    T value;
    std::memcpy(&value, data_.data() + off, sizeof(T));
    return value;
  }

  // Writes a trivially-copyable T at byte offset `off`.
  template <typename T>
  void WriteAt(uint32_t off, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    SEGDB_DCHECK(uint64_t{off} + sizeof(T) <= data_.size());
    std::memcpy(data_.data() + off, &value, sizeof(T));
  }

  // Reads `count` consecutive T records starting at byte offset `off`.
  // count == 0 is legal even with out == nullptr (an empty vector's data()).
  template <typename T>
  void ReadArray(uint32_t off, T* out, uint32_t count) const {
    static_assert(std::is_trivially_copyable_v<T>);
    SEGDB_DCHECK(uint64_t{off} + sizeof(T) * uint64_t{count} <=
                 data_.size());
    if (count == 0) return;
    std::memcpy(out, data_.data() + off, sizeof(T) * count);
  }

  // Writes `count` consecutive T records starting at byte offset `off`.
  // count == 0 is legal even with values == nullptr.
  template <typename T>
  void WriteArray(uint32_t off, const T* values, uint32_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    SEGDB_DCHECK(uint64_t{off} + sizeof(T) * uint64_t{count} <=
                 data_.size());
    if (count == 0) return;
    std::memcpy(data_.data() + off, values, sizeof(T) * count);
  }

 private:
  std::vector<uint8_t> data_;
};

}  // namespace segdb::io

#endif  // SEGDB_IO_PAGE_H_
