#include "io/io_scheduler.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <utility>

#include "util/check.h"

namespace segdb::io {

IoScheduler::IoScheduler(AsyncIoEngine* engine, uint32_t page_size,
                         uint64_t data_offset, uint32_t max_merge_pages)
    : engine_(engine),
      page_size_(page_size),
      data_offset_(data_offset),
      max_merge_pages_(max_merge_pages == 0 ? 1 : max_merge_pages) {
  SEGDB_CHECK(engine != nullptr);
  SEGDB_CHECK(page_size > 0);
}

namespace {

// One engine op covering `count` consecutive device pages starting at
// `first`. Every run reads into an aligned scratch buffer and is
// scattered to the requesters' destinations on completion — O_DIRECT
// demands 4 KiB-aligned transfer buffers and the callers' Page storage
// gives no such guarantee, so the bounce is unconditional (one memcpy per
// page, noise next to a device transfer).
struct Run {
  PageId first = kInvalidPageId;
  uint32_t count = 0;
  std::vector<PageReadRequest*> primaries;  // one per page, in run order
  std::unique_ptr<uint8_t[], decltype(&std::free)> scratch{nullptr,
                                                           &std::free};
  IoOp op;
};

constexpr size_t kScratchAlign = 4096;

}  // namespace

Status IoScheduler::ReadPages(std::span<PageReadRequest> requests) {
  ++stats_.batches;
  stats_.pages += requests.size();
  stats_.max_batch_pages =
      std::max<uint64_t>(stats_.max_batch_pages, requests.size());
  if (requests.empty()) return Status::OK();

  // Dedup: the first request for an id is its primary; later requests for
  // the same id are satisfied by copy after the primary completes.
  std::vector<PageReadRequest*> order;
  order.reserve(requests.size());
  for (PageReadRequest& r : requests) order.push_back(&r);
  std::stable_sort(order.begin(), order.end(),
                   [](const PageReadRequest* a, const PageReadRequest* b) {
                     return a->id < b->id;
                   });
  std::vector<PageReadRequest*> primaries;
  std::vector<std::pair<PageReadRequest*, PageReadRequest*>> duplicates;
  primaries.reserve(order.size());
  for (PageReadRequest* r : order) {
    if (!primaries.empty() && primaries.back()->id == r->id) {
      duplicates.emplace_back(r, primaries.back());
      ++stats_.dedup_skips;
    } else {
      primaries.push_back(r);
    }
  }

  // Merge runs of adjacent page ids into multi-page transfers.
  std::vector<Run> runs;
  runs.reserve(primaries.size());
  for (size_t i = 0; i < primaries.size();) {
    size_t j = i + 1;
    while (j < primaries.size() && j - i < max_merge_pages_ &&
           primaries[j]->id == primaries[j - 1]->id + 1) {
      ++j;
    }
    Run run;
    run.first = primaries[i]->id;
    run.count = static_cast<uint32_t>(j - i);
    run.primaries.assign(primaries.begin() + i, primaries.begin() + j);
    runs.push_back(std::move(run));
    i = j;
  }
  for (Run& run : runs) {
    if (run.count > 1) {
      stats_.merged_pages += run.count;
      stats_.max_merged_run =
          std::max<uint64_t>(stats_.max_merged_run, run.count);
    }
    size_t bytes = size_t{run.count} * page_size_;
    size_t alloc = (bytes + kScratchAlign - 1) / kScratchAlign *
                   kScratchAlign;  // aligned_alloc wants size % align == 0
    run.scratch.reset(
        static_cast<uint8_t*>(std::aligned_alloc(kScratchAlign, alloc)));
    SEGDB_CHECK(run.scratch != nullptr) << "scheduler scratch allocation";
    run.op.kind = IoOp::Kind::kRead;
    run.op.offset = data_offset_ + uint64_t{run.first} * page_size_;
    run.op.length = run.count * page_size_;
    run.op.buf = run.scratch.get();
  }

  // Drive the engine in waves bounded by its queue depth.
  std::unordered_map<const IoOp*, Run*> by_op;
  by_op.reserve(runs.size());
  for (Run& run : runs) by_op.emplace(&run.op, &run);
  std::vector<IoOp*> wave;
  std::vector<IoOp*> completed;
  size_t next = 0;
  size_t finished = 0;
  Status submit_error;
  while (finished < runs.size()) {
    uint32_t room = engine_->queue_depth() - engine_->inflight();
    if (submit_error.ok() && room > 0 && next < runs.size()) {
      wave.clear();
      size_t take = std::min<size_t>(room, runs.size() - next);
      for (size_t k = 0; k < take; ++k) wave.push_back(&runs[next + k].op);
      Status s = engine_->Start(wave);
      if (s.ok()) {
        next += take;
        stats_.submissions += take;
        stats_.max_inflight =
            std::max<uint64_t>(stats_.max_inflight, engine_->inflight());
      } else {
        // Submission-level failure: fail every unsubmitted run and stop
        // submitting, but still drain what is already in flight.
        submit_error = s;
        for (size_t k = next; k < runs.size(); ++k) {
          for (PageReadRequest* r : runs[k].primaries) r->status = s;
          ++finished;
        }
        next = runs.size();
        continue;
      }
    }
    if (engine_->inflight() == 0) {
      if (next >= runs.size()) break;
      continue;
    }
    completed.clear();
    SEGDB_RETURN_IF_ERROR(engine_->WaitOne(&completed));
    for (IoOp* op : completed) {
      Run* run = by_op.at(op);
      for (size_t p = 0; p < run->primaries.size(); ++p) {
        PageReadRequest* r = run->primaries[p];
        r->status = op->status;
        if (op->status.ok()) {
          std::memcpy(r->dst, run->scratch.get() + p * size_t{page_size_},
                      page_size_);
        }
      }
      ++finished;
    }
  }

  for (auto& [dup, primary] : duplicates) {
    dup->status = primary->status;
    if (primary->status.ok()) {
      std::memcpy(dup->dst, primary->dst, page_size_);
    }
  }
  return submit_error;
}

}  // namespace segdb::io
