#include "io/buffer_pool.h"

#include <cstring>

#include "util/check.h"


namespace segdb::io {

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    other.pool_ = nullptr;
  }
  return *this;
}

Page& PageRef::page() {
  SEGDB_DCHECK(valid());
  return pool_->frames_[frame_].page;
}

const Page& PageRef::page() const {
  SEGDB_DCHECK(valid());
  return pool_->frames_[frame_].page;
}

void PageRef::MarkDirty() {
  SEGDB_DCHECK(valid());
  pool_->frames_[frame_].dirty = true;
}

void PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t frame_count) : disk_(disk) {
  SEGDB_DCHECK(frame_count > 0);
  frames_.reserve(frame_count);
  for (size_t i = 0; i < frame_count; ++i) {
    frames_.emplace_back(disk_->page_size());
  }
}

void BufferPool::Unpin(size_t frame) {
  Frame& f = frames_[frame];
  SEGDB_DCHECK(f.pin_count > 0);
  --f.pin_count;
  f.lru_tick = ++tick_;
}

Result<size_t> BufferPool::GrabFrame() {
  size_t victim = frames_.size();
  uint64_t best_tick = ~0ULL;
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (f.id == kInvalidPageId) return i;  // free frame
    if (f.pin_count == 0 && f.lru_tick < best_tick) {
      best_tick = f.lru_tick;
      victim = i;
    }
  }
  if (victim == frames_.size()) {
    return Status::ResourceExhausted("buffer pool: all frames pinned");
  }
  Frame& f = frames_[victim];
  if (f.dirty) {
    SEGDB_RETURN_IF_ERROR(disk_->WritePage(f.id, f.page));
    ++stats_.writebacks;
  }
  page_table_.erase(f.id);
  f.id = kInvalidPageId;
  f.dirty = false;
  return victim;
}

Result<PageRef> BufferPool::Fetch(PageId id) {
  ++stats_.fetches;
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    Frame& f = frames_[it->second];
    ++f.pin_count;
    f.lru_tick = ++tick_;
    return PageRef(this, it->second, id);
  }
  ++stats_.misses;
  Result<size_t> frame = GrabFrame();
  if (!frame.ok()) return frame.status();
  Frame& f = frames_[frame.value()];
  SEGDB_RETURN_IF_ERROR(disk_->ReadPage(id, &f.page));
  f.id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.lru_tick = ++tick_;
  page_table_[id] = frame.value();
  return PageRef(this, frame.value(), id);
}

Result<PageRef> BufferPool::NewPage() {
  Result<PageId> id = disk_->AllocatePage();
  if (!id.ok()) return id.status();
  Result<size_t> frame = GrabFrame();
  if (!frame.ok()) return frame.status();
  Frame& f = frames_[frame.value()];
  f.page.Zero();
  f.id = id.value();
  f.pin_count = 1;
  f.dirty = true;
  f.lru_tick = ++tick_;
  page_table_[id.value()] = frame.value();
  return PageRef(this, frame.value(), id.value());
}

Status BufferPool::FreePage(PageId id) {
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    Frame& f = frames_[it->second];
    if (f.pin_count > 0) {
      return Status::FailedPrecondition("FreePage: page is pinned");
    }
    f.id = kInvalidPageId;
    f.dirty = false;
    page_table_.erase(it);
  }
  return disk_->FreePage(id);
}

Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (f.id != kInvalidPageId && f.dirty) {
      SEGDB_RETURN_IF_ERROR(disk_->WritePage(f.id, f.page));
      f.dirty = false;
      ++stats_.writebacks;
    }
  }
  return Status::OK();
}

Status BufferPool::CheckInvariants() const {
  size_t resident = 0;
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (f.pin_count < 0) {
      return Status::Corruption("frame with negative pin count");
    }
    if (f.lru_tick > tick_) {
      return Status::Corruption("frame LRU tick ahead of the pool clock");
    }
    if (f.id == kInvalidPageId) {
      if (f.pin_count != 0) {
        return Status::Corruption("empty frame still pinned");
      }
      if (f.dirty) return Status::Corruption("empty frame marked dirty");
      continue;
    }
    ++resident;
    auto it = page_table_.find(f.id);
    if (it == page_table_.end() || it->second != i) {
      return Status::Corruption("resident frame missing from the page table");
    }
    if (!f.dirty) {
      // A clean frame must agree with disk byte-for-byte; a mismatch means
      // a write skipped MarkDirty and would be lost on eviction.
      Page on_disk(disk_->page_size());
      SEGDB_RETURN_IF_ERROR(disk_->PeekPage(f.id, &on_disk));
      if (std::memcmp(f.page.data(), on_disk.data(), f.page.size()) != 0) {
        return Status::Corruption("clean frame diverges from disk contents");
      }
    }
  }
  if (page_table_.size() != resident) {
    return Status::Corruption("page table and resident frames disagree");
  }
  for (const auto& [id, idx] : page_table_) {
    if (idx >= frames_.size() || frames_[idx].id != id) {
      return Status::Corruption("page-table entry points at a wrong frame");
    }
  }
  if (stats_.hits + stats_.misses != stats_.fetches) {
    return Status::Corruption("fetch/hit/miss accounting mismatch");
  }
  return Status::OK();
}

Status BufferPool::EvictAll() {
  for (Frame& f : frames_) {
    if (f.id == kInvalidPageId) continue;
    if (f.pin_count > 0) {
      return Status::FailedPrecondition("EvictAll: page is pinned");
    }
    if (f.dirty) {
      SEGDB_RETURN_IF_ERROR(disk_->WritePage(f.id, f.page));
      ++stats_.writebacks;
    }
    page_table_.erase(f.id);
    f.id = kInvalidPageId;
    f.dirty = false;
  }
  return Status::OK();
}

}  // namespace segdb::io
