#include "io/buffer_pool.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "io/column_codec.h"
#include "util/check.h"

namespace segdb::io {

namespace {

// Sharding only engages for pools large enough that per-shard LRU is
// indistinguishable from global LRU in practice; every pool smaller than
// kMinFramesPerShard keeps one shard and therefore the exact
// pre-concurrency behaviour (the LRU-model test depends on that).
constexpr size_t kMaxShards = 16;
constexpr size_t kMinFramesPerShard = 1024;

size_t PickShardCount(size_t frame_count) {
  const size_t by_size = frame_count / kMinFramesPerShard;
  return std::max<size_t>(1, std::min(kMaxShards, by_size));
}

// Default compressed-tier budget for pools built through the two-argument
// constructor. CI exercises the whole suite tier-on by exporting this.
size_t EnvCompressedTierBytes() {
  const char* env = std::getenv("SEGDB_COMPRESSED_TIER_BYTES");
  if (env == nullptr || *env == '\0') return 0;
  return static_cast<size_t>(std::strtoull(env, nullptr, 10));
}

}  // namespace

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    other.pool_ = nullptr;
  }
  return *this;
}

Page& PageRef::page() {
  SEGDB_DCHECK(valid());
  return pool_->frames_[frame_].page;
}

const Page& PageRef::page() const {
  SEGDB_DCHECK(valid());
  return pool_->frames_[frame_].page;
}

void PageRef::MarkDirty() {
  SEGDB_DCHECK(valid());
  // The pin's release-store in Unpin orders this (and any raw page writes)
  // before a future evictor's acquire-load of the pin count.
  pool_->frames_[frame_].dirty.store(true, std::memory_order_relaxed);
}

void PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t frame_count)
    : BufferPool(disk, frame_count,
                 BufferPoolOptions{EnvCompressedTierBytes()}) {}

BufferPool::BufferPool(DiskManager* disk, size_t frame_count,
                       BufferPoolOptions options)
    : disk_(disk), page_size_(disk->page_size()) {
  SEGDB_DCHECK(frame_count > 0);
  for (size_t i = 0; i < frame_count; ++i) {
    frames_.emplace_back(page_size_);
  }
  shards_ = std::vector<Shard>(PickShardCount(frame_count));
  // Contiguous frame ranges per shard; the remainder goes to the front
  // shards so every shard's capacity differs by at most one frame.
  const size_t per = frame_count / shards_.size();
  const size_t extra = frame_count % shards_.size();
  size_t next = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const size_t take = per + (s < extra ? 1 : 0);
    shards_[s].frames.reserve(take);
    for (size_t i = 0; i < take; ++i) shards_[s].frames.push_back(next++);
  }
  SEGDB_DCHECK(next == frame_count);
  if (options.compressed_tier_bytes > 0) {
    ctier_shard_budget_ =
        (options.compressed_tier_bytes + shards_.size() - 1) / shards_.size();
  }
}

void BufferPool::Unpin(size_t frame) {
  Frame& f = frames_[frame];
  // Tick first: after the release-decrement the frame may be evicted and
  // reused, and this pin must not touch it again.
  f.lru_tick.store(NextTick(), std::memory_order_relaxed);
  const int prev = f.pin_count.fetch_sub(1, std::memory_order_release);
  SEGDB_DCHECK(prev > 0);
}

Result<size_t> BufferPool::GrabFrame(Shard& shard) {
  size_t victim = frames_.size();
  uint64_t best_tick = ~0ULL;
  for (size_t idx : shard.frames) {
    Frame& f = frames_[idx];
    if (f.id == kInvalidPageId) return idx;  // free frame
    // Acquire pairs with the release-decrement in Unpin: a frame seen
    // unpinned here is fully released, including its page bytes and dirty
    // bit. Pins only grow under this shard's mutex, which we hold.
    if (f.pin_count.load(std::memory_order_acquire) == 0) {
      const uint64_t tick = f.lru_tick.load(std::memory_order_relaxed);
      if (tick < best_tick) {
        best_tick = tick;
        victim = idx;
      }
    }
  }
  if (victim == frames_.size()) {
    return Status::ResourceExhausted("buffer pool: all frames pinned");
  }
  Frame& f = frames_[victim];
  if (f.dirty.load(std::memory_order_relaxed)) {
    if (sink_ != nullptr) {
      // NO-STEAL: an uncommitted dirty page never reaches the device. The
      // sink keeps the bytes in RAM until commit-time writeback (a crash
      // before then correctly discards them). No tier stash either — tier
      // entries must equal disk, which this page does not.
      sink_->CaptureEviction(f.id, f.page);
      ++shard.stats.spills;
      shard.page_table.erase(f.id);
      f.id = kInvalidPageId;
      f.dirty.store(false, std::memory_order_relaxed);
      f.prefetched = false;
      return victim;
    }
    SEGDB_RETURN_IF_ERROR(disk_->WritePage(f.id, f.page));
    ++shard.stats.writebacks;
  }
  // Stash AFTER the writeback succeeded (and only then): a tier entry must
  // always equal the on-disk bytes, so a dropped or budget-evicted entry is
  // never a data loss and a writeback fault leaves no stale stash behind.
  StashCompressed(shard, f.id, f.page);
  shard.page_table.erase(f.id);
  f.id = kInvalidPageId;
  f.dirty.store(false, std::memory_order_relaxed);
  f.prefetched = false;
  return victim;
}

void BufferPool::StashCompressed(Shard& shard, PageId id, const Page& page) {
  if (ctier_shard_budget_ == 0) return;
  std::vector<uint8_t> bytes = CompressPage(page.data(), page_size_);
  if (bytes.size() > ctier_shard_budget_) return;  // would never fit
  auto [it, inserted] = shard.ctier.try_emplace(id);
  if (!inserted) shard.ctier_bytes -= it->second.size();
  shard.ctier_bytes += bytes.size();
  it->second = std::move(bytes);
  // A re-stash keeps its original FIFO slot; promoted-and-stashed-again ids
  // get a fresh node while their stale one waits to be skipped.
  if (inserted) shard.ctier_fifo.push_back(id);
  ++shard.stats.compressed_stores;
  while (shard.ctier_bytes > ctier_shard_budget_ && !shard.ctier_fifo.empty()) {
    const PageId oldest = shard.ctier_fifo.front();
    shard.ctier_fifo.pop_front();
    auto vit = shard.ctier.find(oldest);
    if (vit == shard.ctier.end()) continue;  // stale node
    shard.ctier_bytes -= vit->second.size();
    shard.ctier.erase(vit);
    ++shard.stats.compressed_evictions;
  }
  // Stale nodes accumulate one per promote-then-restash cycle; compact the
  // queue before it can grow past a small multiple of the live entry count.
  if (shard.ctier_fifo.size() > 2 * shard.ctier.size() + 64) {
    std::deque<PageId> live;
    for (PageId pid : shard.ctier_fifo) {
      if (shard.ctier.find(pid) != shard.ctier.end()) live.push_back(pid);
    }
    shard.ctier_fifo.swap(live);
  }
}

void BufferPool::DropCompressed(Shard& shard, PageId id) {
  auto it = shard.ctier.find(id);
  if (it == shard.ctier.end()) return;
  shard.ctier_bytes -= it->second.size();
  shard.ctier.erase(it);  // its FIFO node goes stale and is skipped later
}

Result<PageRef> BufferPool::Fetch(PageId id) {
  Shard& shard = ShardFor(id);
  util::MutexLock lock(&shard.mu);
  ++shard.stats.fetches;
  // Single probe on the hit path: try_emplace either finds the resident
  // frame or leaves a placeholder we fill (or erase) below.
  auto [it, inserted] = shard.page_table.try_emplace(id, 0);
  if (!inserted) {
    Frame& f = frames_[it->second];
    if (f.prefetched) {
      // First demand fetch of a staged page: charge the miss the paper's
      // model counts for this page, without a second physical read.
      f.prefetched = false;
      ++shard.stats.misses;
    } else {
      ++shard.stats.hits;
    }
    f.pin_count.fetch_add(1, std::memory_order_relaxed);
    f.lru_tick.store(NextTick(), std::memory_order_relaxed);
    return PageRef(this, it->second, id);
  }
  // Compressed-tier probe before the miss is charged: a promotion
  // decompresses RAM-resident bytes instead of reading the device, so it is
  // its own stats bucket, not a miss. The entry is moved out and erased
  // BEFORE GrabFrame — the grab may stash its victim into this same map,
  // and dropping our entry early is harmless because tier bytes are always
  // a copy of disk (a failed grab just means the next fetch reads disk).
  auto ct = shard.ctier.find(id);
  if (ct != shard.ctier.end()) {
    ++shard.stats.compressed_hits;
    const std::vector<uint8_t> bytes = std::move(ct->second);
    shard.ctier_bytes -= bytes.size();
    shard.ctier.erase(ct);
    Result<size_t> frame = GrabFrame(shard);
    if (!frame.ok()) {
      shard.page_table.erase(it);
      return frame.status();
    }
    Frame& f = frames_[frame.value()];
    DecompressPage(bytes, f.page.data(), page_size_);
    f.id = id;
    f.pin_count.store(1, std::memory_order_relaxed);
    f.dirty.store(false, std::memory_order_relaxed);
    f.prefetched = false;
    f.lru_tick.store(NextTick(), std::memory_order_relaxed);
    it->second = frame.value();
    return PageRef(this, frame.value(), id);
  }
  ++shard.stats.misses;
  Result<size_t> frame = GrabFrame(shard);
  if (!frame.ok()) {
    shard.page_table.erase(it);
    return frame.status();
  }
  Frame& f = frames_[frame.value()];
  if (sink_ != nullptr && sink_->TakeSpilled(id, &f.page)) {
    // A spilled dirty page rejoins the pool. The miss above stays charged —
    // without the sink these bytes would have been written back on eviction
    // and demand-read here, so cold I/O counts are sink-invariant. The
    // frame is dirty: the device copy is stale until commit writeback.
    f.id = id;
    f.pin_count.store(1, std::memory_order_relaxed);
    f.dirty.store(true, std::memory_order_relaxed);
    f.prefetched = false;
    f.lru_tick.store(NextTick(), std::memory_order_relaxed);
    it->second = frame.value();
    return PageRef(this, frame.value(), id);
  }
  Status read = disk_->ReadPage(id, &f.page);
  if (!read.ok()) {
    // Failed demand read: drop the placeholder and leave the grabbed frame
    // free (its id was never set), so a retry of the same Fetch starts
    // from a clean slate. The miss stays counted — the device was asked.
    shard.page_table.erase(it);
    return read;
  }
  f.id = id;
  f.pin_count.store(1, std::memory_order_relaxed);
  f.dirty.store(false, std::memory_order_relaxed);
  f.prefetched = false;
  f.lru_tick.store(NextTick(), std::memory_order_relaxed);
  it->second = frame.value();
  return PageRef(this, frame.value(), id);
}

Result<PageRef> BufferPool::NewPage() {
  Result<PageId> id = disk_->AllocatePage();
  if (!id.ok()) return id.status();
  Shard& shard = ShardFor(id.value());
  util::MutexLock lock(&shard.mu);
  Result<size_t> frame = GrabFrame(shard);
  if (!frame.ok()) {
    // Return the just-allocated disk page or it leaks: the id is in no
    // page table and no caller ever learns it. FreePage is a reliable
    // metadata op (never fault-injected), but free of a page we no longer
    // track is best-effort by nature.
    disk_->FreePage(id.value()).IgnoreError();
    return frame.status();
  }
  Frame& f = frames_[frame.value()];
  f.page.Zero();
  f.id = id.value();
  f.pin_count.store(1, std::memory_order_relaxed);
  f.dirty.store(true, std::memory_order_relaxed);
  f.prefetched = false;
  f.lru_tick.store(NextTick(), std::memory_order_relaxed);
  shard.page_table[id.value()] = frame.value();
  return PageRef(this, frame.value(), id.value());
}

Status BufferPool::FreePage(PageId id) {
  Shard& shard = ShardFor(id);
  {
    util::MutexLock lock(&shard.mu);
    auto it = shard.page_table.find(id);
    if (it != shard.page_table.end()) {
      Frame& f = frames_[it->second];
      if (f.pin_count.load(std::memory_order_acquire) > 0) {
        return Status::FailedPrecondition("FreePage: page is pinned");
      }
      f.id = kInvalidPageId;
      f.dirty.store(false, std::memory_order_relaxed);
      f.prefetched = false;
      shard.page_table.erase(it);
    }
    // A freed page's id can be re-allocated by NewPage; a stale tier entry
    // would then resurrect the old bytes on the first eviction/fetch cycle.
    DropCompressed(shard, id);
  }
  if (sink_ != nullptr) {
    // Defer the device-level free to the commit that owns this mutation:
    // until it is applied, the device still counts the page as live, so the
    // free list stays a function of committed state only (the recovery
    // bit-identity argument leans on this).
    sink_->DeferFree(id);
    return Status::OK();
  }
  return disk_->FreePage(id);
}

void BufferPool::Prefetch(std::span<const PageId> ids) {
  disk_->PrefetchPages(ids);

  // Phase 1 — claim a free frame per stageable page, under its shard's
  // lock. A claimed frame carries the page id and the stager's pin but no
  // page-table entry, so demand fetches neither see it nor evict it; the
  // `staging` flag tells the audit what state it is in.
  struct Claim {
    PageId id;
    size_t frame;
  };
  std::vector<Claim> claims;
  claims.reserve(ids.size());
  for (PageId id : ids) {
    if (id == kInvalidPageId) continue;
    Shard& shard = ShardFor(id);
    util::MutexLock lock(&shard.mu);
    if (shard.page_table.find(id) != shard.page_table.end()) continue;
    // Tier-resident pages are already one decompression away from a frame;
    // staging them from disk would duplicate the bytes and break the
    // tier/page-table disjointness invariant.
    if (shard.ctier.find(id) != shard.ctier.end()) continue;
    // Spilled pages must not be staged either: the device bytes are stale
    // (the fresh bytes live in the sink until commit-time writeback).
    if (sink_ != nullptr && sink_->Contains(id)) continue;
    // Free frames only: read-ahead must never displace demand-resident
    // pages, or it would perturb the measured hit/miss pattern. A frame
    // claimed earlier in this batch has its id set, so it is not free and
    // a duplicate id in `ids` claims nothing twice.
    size_t free_frame = frames_.size();
    bool already_claimed = false;
    for (size_t idx : shard.frames) {
      Frame& g = frames_[idx];
      if (g.id == id && g.staging) {
        already_claimed = true;
        break;
      }
      if (free_frame == frames_.size() && g.id == kInvalidPageId) {
        free_frame = idx;
      }
    }
    if (already_claimed || free_frame == frames_.size()) continue;
    Frame& f = frames_[free_frame];
    f.id = id;
    f.pin_count.store(1, std::memory_order_relaxed);
    f.dirty.store(false, std::memory_order_relaxed);
    f.prefetched = false;
    f.staging = true;
    claims.push_back(Claim{id, free_frame});
  }
  if (claims.empty()) return;

  // Phase 2 — one uncounted bulk read for the whole batch, outside every
  // shard lock. The file backend turns this span into deduped, merged,
  // queue-depth-bounded async submissions; the sim backend memcpys. Either
  // way no demand read is charged — each page's miss lands at its first
  // Fetch, which keeps cold I/O counts bit-identical across backends.
  std::vector<PageFill> fills;
  fills.reserve(claims.size());
  for (const Claim& c : claims) {
    fills.push_back(PageFill{c.id, &frames_[c.frame].page, Status::OK()});
  }
  disk_->PeekPagesBatch(fills);

  // Phase 3 — install or release, re-locking each shard. On a failed read
  // (e.g. an injected fault) the frame goes back to FREE — unmapped,
  // unpinned, clean — so the stage is a no-op and the partial bytes are
  // unreachable; the fault-injection suite pins this down. A page that
  // became resident meanwhile (demand fetch raced the fill) also releases
  // the claim: the table entry wins.
  for (size_t i = 0; i < claims.size(); ++i) {
    const Claim& c = claims[i];
    Shard& shard = ShardFor(c.id);
    util::MutexLock lock(&shard.mu);
    Frame& f = frames_[c.frame];
    f.staging = false;
    if (!fills[i].status.ok() ||
        shard.page_table.find(c.id) != shard.page_table.end()) {
      f.id = kInvalidPageId;
      f.pin_count.store(0, std::memory_order_relaxed);
      continue;
    }
    f.prefetched = true;
    f.pin_count.store(0, std::memory_order_relaxed);
    f.lru_tick.store(NextTick(), std::memory_order_relaxed);
    shard.page_table[c.id] = c.frame;
    ++shard.stats.prefetches;
  }
}

Status BufferPool::FlushAll() {
  for (Shard& shard : shards_) {
    util::MutexLock lock(&shard.mu);
    for (size_t idx : shard.frames) {
      Frame& f = frames_[idx];
      if (f.id != kInvalidPageId && f.dirty.load(std::memory_order_relaxed)) {
        SEGDB_RETURN_IF_ERROR(disk_->WritePage(f.id, f.page));
        f.dirty.store(false, std::memory_order_relaxed);
        ++shard.stats.writebacks;
      }
    }
  }
  return Status::OK();
}

Status BufferPool::EvictAll() {
  for (Shard& shard : shards_) {
    util::MutexLock lock(&shard.mu);
    for (size_t idx : shard.frames) {
      Frame& f = frames_[idx];
      if (f.id == kInvalidPageId) continue;
      if (f.pin_count.load(std::memory_order_acquire) > 0) {
        return Status::FailedPrecondition("EvictAll: page is pinned");
      }
      if (f.dirty.load(std::memory_order_relaxed)) {
        SEGDB_RETURN_IF_ERROR(disk_->WritePage(f.id, f.page));
        ++shard.stats.writebacks;
      }
      shard.page_table.erase(f.id);
      f.id = kInvalidPageId;
      f.dirty.store(false, std::memory_order_relaxed);
      f.prefetched = false;
    }
    // A cold cache has no second tier either: dropping it here keeps the
    // EvictAll/ResetStats measurement protocol tier-invariant, so the
    // golden cold-miss counts hold with the tier on or off.
    shard.ctier.clear();
    shard.ctier_fifo.clear();
    shard.ctier_bytes = 0;
  }
  return Status::OK();
}

void BufferPool::CollectDirty(std::vector<PageImage>* out) const {
  for (const Shard& shard : shards_) {
    util::MutexLock lock(&shard.mu);
    for (size_t idx : shard.frames) {
      const Frame& f = frames_[idx];
      if (f.id == kInvalidPageId || f.staging) continue;
      if (!f.dirty.load(std::memory_order_relaxed)) continue;
      PageImage image;
      image.id = f.id;
      image.bytes.assign(f.page.data(), f.page.data() + f.page.size());
      out->push_back(std::move(image));
    }
  }
  std::sort(out->begin(), out->end(),
            [](const PageImage& a, const PageImage& b) { return a.id < b.id; });
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats total;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(&shard.mu);
    total.fetches += shard.stats.fetches;
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.writebacks += shard.stats.writebacks;
    total.prefetches += shard.stats.prefetches;
    total.spills += shard.stats.spills;
    total.compressed_hits += shard.stats.compressed_hits;
    total.compressed_stores += shard.stats.compressed_stores;
    total.compressed_evictions += shard.stats.compressed_evictions;
    total.compressed_resident_pages += shard.ctier.size();
    total.compressed_resident_bytes += shard.ctier_bytes;
  }
  return total;
}

void BufferPool::ResetStats() {
  for (Shard& shard : shards_) {
    util::MutexLock lock(&shard.mu);
    shard.stats = BufferPoolStats();
  }
}

Status BufferPool::CheckInvariants() const {
  uint64_t tick_now = tick_.load(std::memory_order_relaxed);
  std::vector<bool> owned(frames_.size(), false);
  size_t resident = 0;
  size_t table_total = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    // Hold the shard's mutex while auditing it. The audit is documented
    // quiescent-only (the frame-vs-disk byte compare can race with pinned
    // writers), but the page-table and stats reads are guarded state, and
    // the thread-safety analysis rightly rejected the previous lock-free
    // walk: an audit concurrent with a Fetch storm on another shard is
    // legal and must not tear this shard's map.
    util::MutexLock lock(&shard.mu);
    for (size_t idx : shard.frames) {
      if (idx >= frames_.size() || owned[idx]) {
        return Status::Corruption("frame owned by no or several shards");
      }
      owned[idx] = true;
      const Frame& f = frames_[idx];
      if (f.pin_count.load(std::memory_order_relaxed) < 0) {
        return Status::Corruption("frame with negative pin count");
      }
      if (f.lru_tick.load(std::memory_order_relaxed) > tick_now) {
        // Unpins stamp frame ticks lock-free, so a concurrent reader can
        // legitimately advance a frame past our clock snapshot; refresh
        // the snapshot (the clock is monotonic) before calling it
        // corruption.
        tick_now = tick_.load(std::memory_order_relaxed);
        if (f.lru_tick.load(std::memory_order_relaxed) > tick_now) {
          return Status::Corruption("frame LRU tick ahead of the pool clock");
        }
      }
      if (f.id == kInvalidPageId) {
        if (f.pin_count.load(std::memory_order_relaxed) != 0) {
          return Status::Corruption("empty frame still pinned");
        }
        if (f.dirty.load(std::memory_order_relaxed)) {
          return Status::Corruption("empty frame marked dirty");
        }
        if (f.staging) {
          return Status::Corruption("staging frame with no page id");
        }
        continue;
      }
      if (f.staging) {
        // Claimed by an in-flight batched Prefetch: holds exactly the
        // stager's pin, is not yet mapped (so not resident), and its page
        // bytes are undefined until the fill completes.
        if (f.pin_count.load(std::memory_order_relaxed) != 1) {
          return Status::Corruption(
              "staging frame must hold exactly the stager's pin");
        }
        if (f.prefetched) {
          return Status::Corruption("staging frame already marked staged");
        }
        auto claimed = shard.page_table.find(f.id);
        if (claimed != shard.page_table.end() && claimed->second == idx) {
          return Status::Corruption("staging frame is in the page table");
        }
        continue;
      }
      ++resident;
      if (f.id % shards_.size() != s) {
        return Status::Corruption("page resident in the wrong shard");
      }
      auto it = shard.page_table.find(f.id);
      if (it == shard.page_table.end() || it->second != idx) {
        return Status::Corruption("resident frame missing from the page table");
      }
      if (f.prefetched &&
          f.pin_count.load(std::memory_order_relaxed) != 0) {
        return Status::Corruption("staged (prefetched) frame is pinned");
      }
      if (!f.dirty.load(std::memory_order_relaxed)) {
        // A clean frame must agree with disk byte-for-byte; a mismatch
        // means a write skipped MarkDirty and would be lost on eviction.
        Page on_disk(page_size_);
        SEGDB_RETURN_IF_ERROR(disk_->PeekPage(f.id, &on_disk));
        if (std::memcmp(f.page.data(), on_disk.data(), f.page.size()) != 0) {
          return Status::Corruption("clean frame diverges from disk contents");
        }
      }
    }
    table_total += shard.page_table.size();
    for (const auto& [id, idx] : shard.page_table) {
      if (idx >= frames_.size() || frames_[idx].id != id) {
        return Status::Corruption("page-table entry points at a wrong frame");
      }
      if (id % shards_.size() != s) {
        return Status::Corruption("page-table entry in the wrong shard");
      }
    }
    // Compressed tier: byte accounting, budget, shard placement,
    // disjointness from the frame-resident set, and — the core guarantee —
    // every entry decompresses to exactly the page's on-disk bytes.
    uint64_t ctier_bytes = 0;
    for (const auto& [id, bytes] : shard.ctier) {
      ctier_bytes += bytes.size();
      if (id % shards_.size() != s) {
        return Status::Corruption("compressed-tier entry in the wrong shard");
      }
      if (shard.page_table.find(id) != shard.page_table.end()) {
        return Status::Corruption(
            "page resident in both a frame and the compressed tier");
      }
      Page on_disk(page_size_);
      SEGDB_RETURN_IF_ERROR(disk_->PeekPage(id, &on_disk));
      Page decoded(page_size_);
      DecompressPage(bytes, decoded.data(), page_size_);
      if (std::memcmp(decoded.data(), on_disk.data(), page_size_) != 0) {
        return Status::Corruption(
            "compressed-tier entry diverges from disk contents");
      }
    }
    if (ctier_bytes != shard.ctier_bytes) {
      return Status::Corruption("compressed-tier byte accounting mismatch");
    }
    if (ctier_shard_budget_ == 0 && !shard.ctier.empty()) {
      return Status::Corruption("compressed tier populated while disabled");
    }
    if (shard.ctier_bytes > ctier_shard_budget_) {
      return Status::Corruption("compressed tier exceeds its shard budget");
    }
  }
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (!owned[i]) return Status::Corruption("frame owned by no shard");
  }
  if (table_total != resident) {
    return Status::Corruption("page table and resident frames disagree");
  }
  const BufferPoolStats s = stats();
  // A fetch resolves as exactly one of: frame hit, demand miss, or
  // compressed-tier promotion. (Failed fetches keep their bucket — the
  // device or tier was asked — matching the single-tier accounting.)
  if (s.hits + s.misses + s.compressed_hits != s.fetches) {
    return Status::Corruption("fetch/hit/miss accounting mismatch");
  }
  return Status::OK();
}

}  // namespace segdb::io
