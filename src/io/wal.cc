#include "io/wal.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/check.h"
#include "util/clock.h"
#include "util/crc32.h"

namespace segdb::io {

namespace {

// Chain page header: magic u32 | crc u32 | generation u64 | seq u64 |
// next u32 | used u32. The crc covers the whole page with the crc field
// zeroed.
constexpr uint32_t kPageMagic = 0x57414C50;  // "WALP"
constexpr uint32_t kPageHeaderBytes = 32;
constexpr uint32_t kOffMagic = 0;
constexpr uint32_t kOffCrc = 4;
constexpr uint32_t kOffGeneration = 8;
constexpr uint32_t kOffSeq = 16;
constexpr uint32_t kOffNext = 24;
constexpr uint32_t kOffUsed = 28;

// Record header: type u8 | lsn u64 | payload_len u32 | payload_crc u32.
constexpr uint32_t kRecordHeaderBytes = 17;

// Anchor slot: magic u32 | generation u64 | head u32 | crc u32 (crc over
// the first 16 bytes). Two slots ping-pong at offsets 0 and page_size/2.
constexpr uint32_t kAnchorMagic = 0x57414E43;  // "WANC"
constexpr uint32_t kAnchorSlotBytes = 20;

// Two anchor slots in one page, plus a header and at least one payload
// byte per chain page.
constexpr uint32_t kMinPageSize = 2 * kAnchorSlotBytes + kAnchorSlotBytes;

struct AnchorSlot {
  bool valid = false;
  uint64_t generation = 0;
  PageId head = kInvalidPageId;
};

AnchorSlot ParseAnchorSlot(const Page& page, uint32_t off) {
  AnchorSlot slot;
  if (page.ReadAt<uint32_t>(off + 0) != kAnchorMagic) return slot;
  if (util::Crc32(page.data() + off, 16) != page.ReadAt<uint32_t>(off + 16)) {
    return slot;
  }
  slot.valid = true;
  slot.generation = page.ReadAt<uint64_t>(off + 4);
  slot.head = page.ReadAt<PageId>(off + 12);
  return slot;
}

void WriteAnchorSlot(Page* page, uint32_t off, uint64_t generation,
                     PageId head) {
  page->WriteAt<uint32_t>(off + 0, kAnchorMagic);
  page->WriteAt<uint64_t>(off + 4, generation);
  page->WriteAt<PageId>(off + 12, head);
  page->WriteAt<uint32_t>(off + 16, util::Crc32(page->data() + off, 16));
}

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(v));
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(v));
}

void AppendRecord(std::vector<uint8_t>* out, uint8_t type, uint64_t lsn,
                  const uint8_t* payload, size_t payload_len) {
  out->push_back(type);
  AppendU64(out, lsn);
  AppendU32(out, static_cast<uint32_t>(payload_len));
  AppendU32(out, util::Crc32(payload, payload_len));
  out->insert(out->end(), payload, payload + payload_len);
}

Status Poisoned() {
  return Status::FailedPrecondition(
      "WAL is poisoned after a device error; recover from the log");
}

}  // namespace

// --- DirtyPageSpill ---

void DirtyPageSpill::CaptureEviction(PageId id, const Page& page) {
  util::MutexLock lock(&mu_);
  spilled_[id].assign(page.data(), page.data() + page.size());
}

bool DirtyPageSpill::TakeSpilled(PageId id, Page* out) {
  util::MutexLock lock(&mu_);
  auto it = spilled_.find(id);
  if (it == spilled_.end()) return false;
  SEGDB_CHECK(it->second.size() == out->size());
  std::memcpy(out->data(), it->second.data(), it->second.size());
  spilled_.erase(it);
  return true;
}

bool DirtyPageSpill::Contains(PageId id) const {
  util::MutexLock lock(&mu_);
  return spilled_.find(id) != spilled_.end();
}

void DirtyPageSpill::DeferFree(PageId id) {
  util::MutexLock lock(&mu_);
  // A freed page's bytes are garbage; any spilled image of it is dead.
  spilled_.erase(id);
  deferred_frees_.push_back(id);
}

void DirtyPageSpill::CollectImages(std::vector<PageImage>* out) const {
  util::MutexLock lock(&mu_);
  for (const auto& [id, bytes] : spilled_) {
    PageImage image;
    image.id = id;
    image.bytes = bytes;
    out->push_back(std::move(image));
  }
}

Status DirtyPageSpill::FlushToDevice(DiskManager* disk) {
  std::map<PageId, std::vector<uint8_t>> taken;
  {
    util::MutexLock lock(&mu_);
    taken.swap(spilled_);
  }
  for (auto it = taken.begin(); it != taken.end(); ++it) {
    Page page(disk->page_size());
    SEGDB_CHECK(it->second.size() == page.size());
    std::memcpy(page.data(), it->second.data(), it->second.size());
    Status s = disk->WritePage(it->first, page);
    if (!s.ok()) {
      // Re-arm the unwritten tail (the failed page included). insert()
      // keeps any image spilled while we were unlocked — newer bytes win.
      util::MutexLock lock(&mu_);
      for (; it != taken.end(); ++it) spilled_.insert(*it);
      return s;
    }
  }
  return Status::OK();
}

void DirtyPageSpill::ApplyDeferredFrees(DiskManager* disk) {
  std::vector<PageId> frees;
  {
    util::MutexLock lock(&mu_);
    frees.swap(deferred_frees_);
  }
  for (PageId id : frees) disk->FreePage(id).IgnoreError();
}

size_t DirtyPageSpill::spilled_pages() const {
  util::MutexLock lock(&mu_);
  return spilled_.size();
}

size_t DirtyPageSpill::deferred_free_count() const {
  util::MutexLock lock(&mu_);
  return deferred_frees_.size();
}

// --- WriteAheadLog ---

WriteAheadLog::WriteAheadLog(DiskManager* disk, PageId anchor,
                             const WalOptions& options)
    : disk_(disk), anchor_(anchor), options_(options) {
  SEGDB_CHECK(options_.segment_pages >= 1);
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Create(
    DiskManager* disk, const WalOptions& options) {
  if (disk->page_size() < kMinPageSize) {
    return Status::InvalidArgument("WAL needs larger pages");
  }
  Result<PageId> anchor = disk->AllocatePage();
  if (!anchor.ok()) return anchor.status();
  Result<PageId> head = disk->AllocatePage();
  if (!head.ok()) return head.status();
  // The head stays zeroed (= no valid page, empty chain) until the first
  // batch writes it; only the anchor is formatted.
  SEGDB_RETURN_IF_ERROR(PublishAnchor(disk, anchor.value(), 1, head.value()));
  std::unique_ptr<WriteAheadLog> log(
      new WriteAheadLog(disk, anchor.value(), options));
  util::MutexLock lock(&log->mu_);
  log->generation_ = 1;
  log->head_ = head.value();
  log->next_write_page_ = head.value();
  return log;
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    DiskManager* disk, PageId anchor, const WalOptions& options) {
  if (disk->page_size() < kMinPageSize) {
    return Status::InvalidArgument("WAL needs larger pages");
  }
  Result<ChainState> chain = ReadChain(disk, anchor);
  if (!chain.ok()) return chain.status();
  const ChainState& state = chain.value();
  if (!state.records.empty() || state.torn_tail_bytes != 0) {
    return Status::FailedPrecondition(
        "WAL chain holds unreplayed records; run Recover() first");
  }
  std::unique_ptr<WriteAheadLog> log(
      new WriteAheadLog(disk, anchor, options));
  util::MutexLock lock(&log->mu_);
  log->generation_ = state.generation;
  log->head_ = state.head;
  log->chain_pages_ = state.pages;
  log->next_write_page_ = state.tail_next;
  log->next_seq_ = state.next_seq;
  log->next_lsn_ = state.next_lsn;
  return log;
}

Result<uint64_t> WriteAheadLog::Commit(std::span<const PageImage> images,
                                       std::span<const uint8_t> payload) {
  PendingCommit me;
  me.images = images;
  me.payload = payload;

  mu_.Lock();
  if (failed_) {
    mu_.Unlock();
    return Poisoned();
  }
  pending_.push_back(&me);
  // Wake a leader holding the group-commit window open: its batch grew.
  cv_.NotifyAll();
  while (!me.done && leader_active_) cv_.Wait(mu_);
  if (!me.done) {
    // Leader duty: everything queued right now (self included) is the
    // batch. Hold the door briefly if the batch is just us.
    leader_active_ = true;
    if (options_.group_commit_window_us > 0 && pending_.size() == 1) {
      const util::Deadline window =
          util::Deadline::AfterMicros(options_.group_commit_window_us);
      while (pending_.size() == 1 && cv_.WaitUntil(mu_, window.when())) {
      }
    }
    std::vector<PendingCommit*> batch;
    batch.swap(pending_);
    if (failed_) {
      // A previous leader poisoned the log while we queued.
      for (PendingCommit* p : batch) {
        p->done = true;
        p->status = Poisoned();
      }
      leader_active_ = false;
      cv_.NotifyAll();
    } else {
      BatchIo io;
      io.start_page = next_write_page_;
      io.start_seq = next_seq_;
      io.start_lsn = next_lsn_;
      io.generation = generation_;
      // All device I/O runs unlocked: the single active leader is the only
      // writer, and committers queueing behind it must not block on the
      // device.
      mu_.Unlock();
      BatchResult result;
      Status s = WriteBatch(batch, io, &result);
      mu_.Lock();
      if (s.ok()) {
        chain_pages_.insert(chain_pages_.end(), result.pages_written.begin(),
                            result.pages_written.end());
        next_write_page_ = result.new_next_head;
        next_seq_ = io.start_seq + result.pages_written.size();
        next_lsn_ = result.end_lsn;
        stats_.commits += batch.size();
        stats_.syncs += 1;
        stats_.records += result.records;
        stats_.pages_written += result.pages_written.size();
        segment_fill_ += result.pages_written.size();
        while (segment_fill_ >= options_.segment_pages) {
          segment_fill_ -= options_.segment_pages;
          ++stats_.segments;
        }
      } else {
        // The device may hold any prefix of the batch; that is exactly a
        // crash. Refuse all further commits — the caller recovers.
        failed_ = true;
      }
      for (PendingCommit* p : batch) {
        p->done = true;
        p->status = s;
      }
      leader_active_ = false;
      cv_.NotifyAll();
    }
  }
  Status s = me.status;
  const uint64_t lsn = me.lsn;
  mu_.Unlock();
  if (!s.ok()) return s;
  return lsn;
}

Status WriteAheadLog::WriteBatch(const std::vector<PendingCommit*>& batch,
                                 const BatchIo& io, BatchResult* out) {
  // Serialize the whole batch into one flat record stream. Image records
  // first, then the owning commit record, per committer in queue order.
  std::vector<uint8_t> stream;
  uint64_t lsn = io.start_lsn;
  uint64_t records = 0;
  for (PendingCommit* p : batch) {
    for (const PageImage& image : p->images) {
      std::vector<uint8_t> body;
      body.reserve(sizeof(PageId) + image.bytes.size());
      AppendU32(&body, image.id);
      body.insert(body.end(), image.bytes.begin(), image.bytes.end());
      AppendRecord(&stream, kRecordPageImage, lsn++, body.data(),
                   body.size());
      ++records;
    }
    p->lsn = lsn;
    AppendRecord(&stream, kRecordCommit, lsn++, p->payload.data(),
                 p->payload.size());
    ++records;
  }

  // Split into chain pages. The first lands on the pre-allocated
  // next_write_page_ (already linked from the synced tail); continuation
  // pages and the NEXT batch's head are allocated fresh, so no synced page
  // is ever rewritten and a crash mid-batch can only leave CRC-invalid
  // pages past the old tail.
  const uint32_t capacity = disk_->page_size() - kPageHeaderBytes;
  const uint64_t n_pages = (stream.size() + capacity - 1) / capacity;
  SEGDB_CHECK(n_pages >= 1);  // a batch holds at least one commit record
  std::vector<PageId> ids;
  ids.reserve(n_pages);
  ids.push_back(io.start_page);
  for (uint64_t i = 1; i < n_pages; ++i) {
    Result<PageId> id = disk_->AllocatePage();
    if (!id.ok()) return id.status();
    ids.push_back(id.value());
  }
  Result<PageId> next_head = disk_->AllocatePage();
  if (!next_head.ok()) return next_head.status();

  uint64_t off = 0;
  for (uint64_t i = 0; i < n_pages; ++i) {
    const uint32_t used = static_cast<uint32_t>(
        std::min<uint64_t>(capacity, stream.size() - off));
    Page page(disk_->page_size());
    page.WriteAt<uint32_t>(kOffMagic, kPageMagic);
    page.WriteAt<uint32_t>(kOffCrc, 0);
    page.WriteAt<uint64_t>(kOffGeneration, io.generation);
    page.WriteAt<uint64_t>(kOffSeq, io.start_seq + i);
    page.WriteAt<PageId>(kOffNext,
                         i + 1 < n_pages ? ids[i + 1] : next_head.value());
    page.WriteAt<uint32_t>(kOffUsed, used);
    std::memcpy(page.data() + kPageHeaderBytes, stream.data() + off, used);
    page.WriteAt<uint32_t>(kOffCrc, util::Crc32(page.data(), page.size()));
    SEGDB_RETURN_IF_ERROR(disk_->WritePage(ids[i], page));
    off += used;
  }
  // The durability barrier: the batch's commits are acknowledged only once
  // every chain page above has reached stable storage.
  SEGDB_RETURN_IF_ERROR(disk_->Sync());

  out->new_next_head = next_head.value();
  out->pages_written = std::move(ids);
  out->records = records;
  out->end_lsn = lsn;
  return Status::OK();
}

Status WriteAheadLog::Checkpoint() {
  mu_.Lock();
  if (failed_) {
    mu_.Unlock();
    return Poisoned();
  }
  if (leader_active_ || !pending_.empty()) {
    mu_.Unlock();
    return Status::FailedPrecondition(
        "Checkpoint requires a quiescent log (commit in flight)");
  }
  // Hold the door: committers arriving during the anchor swap queue behind
  // us exactly as behind a commit leader.
  leader_active_ = true;
  const uint64_t new_generation = generation_ + 1;
  std::vector<PageId> old_pages = chain_pages_;
  const PageId old_next = next_write_page_;
  mu_.Unlock();

  // Barrier first: truncating the log is only sound once every committed
  // page the caller wrote back has reached stable storage. A failed
  // barrier (or allocation) publishes nothing — the old chain is still
  // anchored and intact, so the caller may simply retry later.
  Status s = disk_->Sync();
  bool device_touched = false;
  PageId fresh_head = kInvalidPageId;
  if (s.ok()) {
    Result<PageId> fresh = disk_->AllocatePage();
    if (!fresh.ok()) {
      s = fresh.status();
    } else {
      fresh_head = fresh.value();
      device_touched = true;
      s = PublishAnchor(disk_, anchor_, new_generation, fresh_head);
      if (s.ok()) {
        // The new generation is live: the old chain (and its
        // pre-allocated next page) is garbage.
        for (PageId id : old_pages) disk_->FreePage(id).IgnoreError();
        if (old_next != kInvalidPageId) {
          disk_->FreePage(old_next).IgnoreError();
        }
      }
      // On a PublishAnchor failure NOTHING is freed: the device may hold
      // either generation in the anchor (both are consistent — the new
      // one is an empty chain over already-written-back data, the old one
      // replays idempotently), so every page either anchor references
      // must stay allocated.
    }
  }

  mu_.Lock();
  if (s.ok()) {
    generation_ = new_generation;
    head_ = fresh_head;
    next_write_page_ = fresh_head;
    next_seq_ = 0;
    chain_pages_.clear();
    segment_fill_ = 0;
    ++stats_.checkpoints;
  } else if (device_touched) {
    // In-memory tail state no longer matches whichever anchor slot the
    // device kept. Poison; recovery re-derives everything from the device.
    failed_ = true;
  }
  leader_active_ = false;
  cv_.NotifyAll();
  mu_.Unlock();
  return s;
}

WalStats WriteAheadLog::stats() const {
  util::MutexLock lock(&mu_);
  return stats_;
}

std::vector<PageId> WriteAheadLog::OwnedPages() const {
  util::MutexLock lock(&mu_);
  std::vector<PageId> pages;
  pages.reserve(chain_pages_.size() + 2);
  pages.push_back(anchor_);
  pages.insert(pages.end(), chain_pages_.begin(), chain_pages_.end());
  if (next_write_page_ != kInvalidPageId) pages.push_back(next_write_page_);
  std::sort(pages.begin(), pages.end());
  return pages;
}

Result<WriteAheadLog::ChainState> WriteAheadLog::ReadChain(
    const DiskManager* disk, PageId anchor) {
  Page apage(disk->page_size());
  Status s = disk->PeekPage(anchor, &apage);
  if (!s.ok()) return Status::Corruption("WAL anchor page unreadable");
  const AnchorSlot a = ParseAnchorSlot(apage, 0);
  const AnchorSlot b = ParseAnchorSlot(apage, disk->page_size() / 2);
  if (!a.valid && !b.valid) {
    return Status::Corruption("WAL anchor holds no valid slot");
  }
  const AnchorSlot& best =
      (a.valid && (!b.valid || a.generation >= b.generation)) ? a : b;

  ChainState state;
  state.generation = best.generation;
  state.head = best.head;

  // Walk the chain, concatenating record bytes until the first page that
  // fails validation — an unwritten pre-allocated head, a torn write, a
  // stale generation — which is by construction the torn tail.
  std::vector<uint8_t> stream;
  PageId cursor = best.head;
  uint64_t seq = 0;
  while (true) {
    Page page(disk->page_size());
    if (!disk->PeekPage(cursor, &page).ok()) break;
    if (page.ReadAt<uint32_t>(kOffMagic) != kPageMagic) break;
    const uint32_t stored_crc = page.ReadAt<uint32_t>(kOffCrc);
    page.WriteAt<uint32_t>(kOffCrc, 0);
    if (util::Crc32(page.data(), page.size()) != stored_crc) break;
    if (page.ReadAt<uint64_t>(kOffGeneration) != state.generation) break;
    if (page.ReadAt<uint64_t>(kOffSeq) != seq) break;
    const uint32_t used = page.ReadAt<uint32_t>(kOffUsed);
    if (used > disk->page_size() - kPageHeaderBytes) break;
    stream.insert(stream.end(), page.data() + kPageHeaderBytes,
                  page.data() + kPageHeaderBytes + used);
    state.pages.push_back(cursor);
    ++seq;
    cursor = page.ReadAt<PageId>(kOffNext);
  }
  state.tail_next = cursor;
  state.next_seq = seq;

  // Parse complete records; anything trailing is the torn tail.
  size_t off = 0;
  while (off + kRecordHeaderBytes <= stream.size()) {
    uint8_t type = 0;
    uint64_t lsn = 0;
    uint32_t len = 0;
    uint32_t crc = 0;
    std::memcpy(&type, stream.data() + off, 1);
    std::memcpy(&lsn, stream.data() + off + 1, sizeof(lsn));
    std::memcpy(&len, stream.data() + off + 9, sizeof(len));
    std::memcpy(&crc, stream.data() + off + 13, sizeof(crc));
    if (type != kRecordPageImage && type != kRecordCommit) break;
    if (off + kRecordHeaderBytes + len > stream.size()) break;
    const uint8_t* payload = stream.data() + off + kRecordHeaderBytes;
    if (util::Crc32(payload, len) != crc) break;
    ParsedRecord record;
    record.type = type;
    record.lsn = lsn;
    record.payload.assign(payload, payload + len);
    state.records.push_back(std::move(record));
    off += kRecordHeaderBytes + len;
  }
  state.torn_tail_bytes = stream.size() - off;
  state.next_lsn =
      state.records.empty() ? 0 : state.records.back().lsn + 1;
  return state;
}

Status WriteAheadLog::PublishAnchor(DiskManager* disk, PageId anchor,
                                    uint64_t generation, PageId head) {
  Page page(disk->page_size());
  SEGDB_RETURN_IF_ERROR(disk->PeekPage(anchor, &page));
  const AnchorSlot a = ParseAnchorSlot(page, 0);
  const AnchorSlot b = ParseAnchorSlot(page, disk->page_size() / 2);
  // Overwrite the OLDER (or invalid) slot. The newer slot's bytes are
  // rewritten unchanged, so even a torn write of this page leaves one
  // valid slot: any prefix either preserves the newer slot verbatim or
  // lands the updated slot whole.
  uint32_t target = 0;
  if (a.valid && (!b.valid || a.generation > b.generation)) {
    target = disk->page_size() / 2;
  }
  WriteAnchorSlot(&page, target, generation, head);
  SEGDB_RETURN_IF_ERROR(disk->WritePage(anchor, page));
  return disk->Sync();
}

}  // namespace segdb::io
