// Deadline: a point on the steady clock a request must finish by. The
// serving layer (core::QueryEngine::Serve) checks it at admission, while
// queued, and after execution; expired requests fail with
// Status::DeadlineExceeded instead of occupying a slot another request
// could still meet.
//
// steady_clock on purpose: deadlines order *elapsed time*, and a wall
// clock that jumps (NTP) would expire or resurrect requests spuriously.
#ifndef SEGDB_UTIL_CLOCK_H_
#define SEGDB_UTIL_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace segdb::util {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  // Default: no deadline (never expires).
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }
  static Deadline At(Clock::time_point when) { return Deadline(when, true); }
  template <typename Rep, typename Period>
  static Deadline After(std::chrono::duration<Rep, Period> budget) {
    return At(Clock::now() +
              std::chrono::duration_cast<Clock::duration>(budget));
  }

  // Integer-microsecond form for callers outside src/util, where the raw
  // time-type lint keeps std::chrono out (options structs carry plain
  // integer windows instead — e.g. io::WalOptions' group-commit window).
  static Deadline AfterMicros(uint64_t us) {
    return After(std::chrono::microseconds(us));
  }

  bool is_infinite() const { return !bounded_; }
  bool expired() const { return bounded_ && Clock::now() >= when_; }

  // The time point for CondVar::WaitUntil. Only meaningful when bounded;
  // callers branch on is_infinite() and use plain Wait otherwise.
  Clock::time_point when() const { return when_; }

  // Time left; never negative. Infinite deadlines report Clock::duration
  // max.
  Clock::duration remaining() const {
    if (!bounded_) return Clock::duration::max();
    Clock::time_point now = Clock::now();
    return now >= when_ ? Clock::duration::zero() : when_ - now;
  }

 private:
  Deadline(Clock::time_point when, bool bounded)
      : when_(when), bounded_(bounded) {}

  Clock::time_point when_{};
  bool bounded_ = false;
};

}  // namespace segdb::util

#endif  // SEGDB_UTIL_CLOCK_H_
