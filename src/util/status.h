// Status and Result<T>: exception-free error handling, in the style common
// to database engines (RocksDB, LevelDB). Every fallible operation in segdb
// returns a Status (or Result<T> when it produces a value); callers must
// check with ok() before using results.
//
// Both types are [[nodiscard]]: a dropped return value is a compile-time
// warning (an error under -DSEGDB_WERROR=ON), so statuses cannot be lost
// silently. The rare site that really means to ignore a failure — e.g. a
// destructor releasing pages on a best-effort basis — must say so with
// status.IgnoreError().
#ifndef SEGDB_UTIL_STATUS_H_
#define SEGDB_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/check.h"

namespace segdb {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kCorruption,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  // A transient device-level I/O failure (e.g. injected by
  // io::FaultInjectingDiskManager). Unlike kCorruption, the operation is
  // expected to succeed when retried.
  kIoError,
  // The serving layer shed this request: its admission queue is full.
  // Transient by design — the client backs off and retries; nothing about
  // the request itself is wrong.
  kOverloaded,
  // The request's deadline passed before (or while) it ran. NOT retryable
  // as-is: the same deadline stays expired; the caller must issue a fresh
  // request with a new deadline.
  kDeadlineExceeded,
};

// A lightweight status object: a code plus an optional message. The OK
// status carries no allocation.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // True for transient failures where the SAME operation is expected to
  // succeed when retried: device-level kIoError, and kOverloaded (the
  // serving queue drains; back off and resubmit). Every other error code
  // is permanent — retrying a kCorruption or kInvalidArgument just
  // repeats the failure, and a kDeadlineExceeded needs a NEW deadline,
  // not a retry of the expired one. The semantic checker (tools/
  // segdb_sema) enforces the flip side: a retryable code may only be
  // converted to OK inside a retry loop.
  [[nodiscard]] bool retryable() const {
    return code_ == StatusCode::kIoError ||
           code_ == StatusCode::kOverloaded;
  }

  // Explicitly discards this status. The only sanctioned way to drop an
  // error (destructors and other no-fail contexts); greppable on purpose.
  void IgnoreError() const {}

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kCorruption: return "Corruption";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kUnimplemented: return "Unimplemented";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kIoError: return "IoError";
      case StatusCode::kOverloaded: return "Overloaded";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

// Result<T>: a Status or a value. Accessing value() on a non-OK result is a
// programming error (checked in debug builds).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {                 // NOLINT
    SEGDB_DCHECK(!status_.ok()) << "OK Result must carry a value";
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SEGDB_DCHECK(ok()) << "value() on error Result: " << status_.ToString();
    return value_;
  }
  T& value() & {
    SEGDB_DCHECK(ok()) << "value() on error Result: " << status_.ToString();
    return value_;
  }
  T&& value() && {
    SEGDB_DCHECK(ok()) << "value() on error Result: " << status_.ToString();
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace segdb

// Propagates a non-OK Status from an expression, RocksDB-style.
#define SEGDB_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::segdb::Status _segdb_status = (expr);         \
    if (!_segdb_status.ok()) return _segdb_status;  \
  } while (false)

#endif  // SEGDB_UTIL_STATUS_H_
