// Small integer-math helpers used across segdb, including the IL*(B)
// iterated-log-star function that appears in the paper's complexity bounds.
#ifndef SEGDB_UTIL_MATH_H_
#define SEGDB_UTIL_MATH_H_

#include <cstdint>

namespace segdb {

// floor(log2(x)) for x >= 1. Returns 0 for x <= 1.
constexpr uint32_t FloorLog2(uint64_t x) {
  uint32_t r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

// ceil(log2(x)) for x >= 1. Returns 0 for x <= 1.
constexpr uint32_t CeilLog2(uint64_t x) {
  if (x <= 1) return 0;
  return FloorLog2(x - 1) + 1;
}

// ceil(a / b) for b > 0.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

// log*(x): the number of times log2 must be applied before the value
// drops to <= 1.
constexpr uint32_t LogStar(uint64_t x) {
  uint32_t r = 0;
  while (x > 1) {
    x = FloorLog2(x);
    ++r;
  }
  return r;
}

// IL*(B) from the paper: the number of times log* must be applied to B
// before the result becomes <= 2. For every feasible block size this is a
// tiny constant (<= 2 for B < 2^65536); we expose it so theory columns in
// the benchmark tables can report the exact constant the bounds carry.
constexpr uint32_t IlStar(uint64_t b) {
  uint32_t r = 0;
  while (b > 2) {
    b = LogStar(b);
    ++r;
  }
  return r;
}

// log_base(x) rounded up, for base >= 2; the paper's log_B n terms.
constexpr uint32_t CeilLogBase(uint64_t x, uint64_t base) {
  if (x <= 1) return 0;
  uint32_t r = 0;
  uint64_t v = 1;
  while (v < x) {
    // Saturate instead of overflowing for huge bases.
    if (v > x / base) {
      ++r;
      break;
    }
    v *= base;
    ++r;
  }
  return r;
}

}  // namespace segdb

#endif  // SEGDB_UTIL_MATH_H_
