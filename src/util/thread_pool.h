// A fixed-size worker pool for CPU-parallel fan-out (the batch query
// engine). Deliberately minimal: FIFO task queue, no futures, no work
// stealing — callers that need completion tracking count tasks themselves
// (see core::QueryEngine). Submitted tasks must not throw.
//
// Lock discipline (checked by Clang Thread Safety Analysis, see
// util/sync.h): the queue and the stop flag are guarded by `mu_`; workers
// block on `cv_` under `mu_` and drain the queue before exiting.
#ifndef SEGDB_UTIL_THREAD_POOL_H_
#define SEGDB_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/sync.h"

namespace segdb::util {

class ThreadPool {
 public:
  explicit ThreadPool(size_t threads) {
    SEGDB_CHECK(threads > 0) << "ThreadPool needs at least one worker";
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Runs every queued task, then joins the workers.
  ~ThreadPool() {
    {
      MutexLock lock(&mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
    for (std::thread& w : workers_) w.join();
  }

  size_t size() const { return workers_.size(); }

  void Submit(std::function<void()> task) SEGDB_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      SEGDB_DCHECK(!stop_) << "Submit after shutdown";
      queue_.push_back(std::move(task));
    }
    cv_.NotifyOne();
  }

 private:
  void WorkerLoop() SEGDB_EXCLUDES(mu_) {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(&mu_);
        while (!stop_ && queue_.empty()) cv_.Wait(mu_);
        if (queue_.empty()) return;  // stop_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ SEGDB_GUARDED_BY(mu_);
  bool stop_ SEGDB_GUARDED_BY(mu_) = false;
};

}  // namespace segdb::util

#endif  // SEGDB_UTIL_THREAD_POOL_H_
