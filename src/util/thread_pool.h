// A fixed-size worker pool for CPU-parallel fan-out (the batch query
// engine). Deliberately minimal: FIFO task queue, no futures, no work
// stealing — callers that need completion tracking count tasks themselves
// (see core::QueryEngine). Submitted tasks must not throw.
#ifndef SEGDB_UTIL_THREAD_POOL_H_
#define SEGDB_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.h"

namespace segdb::util {

class ThreadPool {
 public:
  explicit ThreadPool(size_t threads) {
    SEGDB_CHECK(threads > 0) << "ThreadPool needs at least one worker";
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Runs every queued task, then joins the workers.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  size_t size() const { return workers_.size(); }

  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      SEGDB_DCHECK(!stop_) << "Submit after shutdown";
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace segdb::util

#endif  // SEGDB_UTIL_THREAD_POOL_H_
