// Deterministic, fast pseudo-random generation for workload synthesis and
// property tests. All segdb experiments are reproducible from a seed.
#ifndef SEGDB_UTIL_RANDOM_H_
#define SEGDB_UTIL_RANDOM_H_

#include <cstdint>

namespace segdb {

// xoshiro256** with a SplitMix64-seeded state. Not cryptographic; chosen for
// speed and reproducibility across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step.
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace segdb

#endif  // SEGDB_UTIL_RANDOM_H_
