#include "util/table_printer.h"

#include <cstdio>
#include <iomanip>

#include "util/check.h"

namespace segdb {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  SEGDB_DCHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::Fmt(uint64_t value) { return std::to_string(value); }
std::string TablePrinter::Fmt(int64_t value) { return std::to_string(value); }

}  // namespace segdb
