// Fixed-width table formatting for the benchmark harness output. Every
// experiment binary prints its series through this so EXPERIMENTS.md rows
// can be regenerated verbatim.
#ifndef SEGDB_UTIL_TABLE_PRINTER_H_
#define SEGDB_UTIL_TABLE_PRINTER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace segdb {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Cells are stringified values; AddRow asserts the arity matches.
  void AddRow(std::vector<std::string> cells);

  // Renders an aligned ASCII table.
  void Print(std::ostream& os) const;

  // Renders comma-separated values (machine-readable mirror of Print).
  void PrintCsv(std::ostream& os) const;

  static std::string Fmt(double value, int precision = 2);
  static std::string Fmt(uint64_t value);
  static std::string Fmt(int64_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace segdb

#endif  // SEGDB_UTIL_TABLE_PRINTER_H_
