// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum the
// write-ahead log stamps on every page header and record payload. Header-only
// with a constexpr-generated table so the WAL TU pays no init-order cost; the
// incremental form (seed = previous crc) lets callers checksum scattered
// buffers without concatenating them.
#ifndef SEGDB_UTIL_CRC32_H_
#define SEGDB_UTIL_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace segdb::util {

namespace internal {

constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace internal

// Checksums `n` bytes. Chain calls by passing the previous return value as
// `seed` (the pre/post-conditioning composes correctly across calls):
//   Crc32(b, nb, Crc32(a, na)) == Crc32(concat(a, b), na + nb).
inline uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~seed;
  for (size_t i = 0; i < n; ++i) {
    c = internal::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace segdb::util

#endif  // SEGDB_UTIL_CRC32_H_
