// Synchronization primitives with Clang Thread Safety Analysis capability
// annotations (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
//
// This header is the ONLY place in src/ allowed to touch std::mutex and
// friends — tools/segdb_lint.py enforces that. Everything concurrent in
// segdb locks through util::Mutex / util::MutexLock / util::CondVar so
// that a Clang build with -DSEGDB_THREAD_SAFETY=ON (which adds
// -Werror=thread-safety) proves the locking contracts at compile time:
//
//   - data members annotated SEGDB_GUARDED_BY(mu) can only be touched
//     while `mu` is held;
//   - functions annotated SEGDB_REQUIRES(mu) can only be called while
//     `mu` is held;
//   - a SEGDB_SCOPED_CAPABILITY guard (MutexLock) acquires in its
//     constructor and provably releases on every scope exit.
//
// On non-Clang compilers (the container toolchain is GCC) every macro
// expands to nothing and Mutex/MutexLock behave exactly like
// std::mutex/std::lock_guard — zero overhead, zero semantic change. The
// analysis is purely static; a GCC binary and a Clang binary run the same
// code.
//
// Escape hatch: SEGDB_NO_THREAD_SAFETY_ANALYSIS turns the analysis off
// for one function. Every use MUST carry a `// SAFETY:` comment on the
// same or the preceding line explaining why the access is sound;
// tools/segdb_lint.py rejects naked suppressions.
#ifndef SEGDB_UTIL_SYNC_H_
#define SEGDB_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Annotation macros. Clang-only; no-ops elsewhere.
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SEGDB_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef SEGDB_THREAD_ANNOTATION_
#define SEGDB_THREAD_ANNOTATION_(x)
#endif

// Declares a type to be a capability ("mutex" names it in diagnostics).
#define SEGDB_CAPABILITY(x) SEGDB_THREAD_ANNOTATION_(capability(x))

// Declares an RAII type whose lifetime equals a capability hold.
#define SEGDB_SCOPED_CAPABILITY SEGDB_THREAD_ANNOTATION_(scoped_lockable)

// Data member: may only be read or written while holding `x`.
#define SEGDB_GUARDED_BY(x) SEGDB_THREAD_ANNOTATION_(guarded_by(x))

// Pointer member: the *pointee* may only be accessed while holding `x`.
#define SEGDB_PT_GUARDED_BY(x) SEGDB_THREAD_ANNOTATION_(pt_guarded_by(x))

// Function precondition: caller must hold the capability (and keeps it).
#define SEGDB_REQUIRES(...) \
  SEGDB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define SEGDB_REQUIRES_SHARED(...) \
  SEGDB_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// Function acquires / releases the capability.
#define SEGDB_ACQUIRE(...) \
  SEGDB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define SEGDB_ACQUIRE_SHARED(...) \
  SEGDB_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define SEGDB_RELEASE(...) \
  SEGDB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define SEGDB_RELEASE_SHARED(...) \
  SEGDB_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define SEGDB_TRY_ACQUIRE(...) \
  SEGDB_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// Function precondition: caller must NOT hold the capability (anti-
// deadlock: e.g. a public method that locks internally).
#define SEGDB_EXCLUDES(...) SEGDB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Lock-ordering declarations between capabilities.
#define SEGDB_ACQUIRED_BEFORE(...) \
  SEGDB_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define SEGDB_ACQUIRED_AFTER(...) \
  SEGDB_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// Runtime assertion that the capability is held (teaches the analysis).
#define SEGDB_ASSERT_CAPABILITY(x) \
  SEGDB_THREAD_ANNOTATION_(assert_capability(x))

// Function returns a reference to a capability.
#define SEGDB_RETURN_CAPABILITY(x) SEGDB_THREAD_ANNOTATION_(lock_returned(x))

// Disables the analysis for one function. Requires a `// SAFETY:` comment
// (enforced by tools/segdb_lint.py).
#define SEGDB_NO_THREAD_SAFETY_ANALYSIS \
  SEGDB_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace segdb::util {

class CondVar;

// std::mutex with a capability identity. Prefer MutexLock over manual
// Lock/Unlock pairs; the scoped form is what the analysis checks best.
class SEGDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SEGDB_ACQUIRE() { mu_.lock(); }
  void Unlock() SEGDB_RELEASE() { mu_.unlock(); }
  bool TryLock() SEGDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock over a Mutex, the segdb replacement for std::lock_guard /
// std::unique_lock. Scoped capability: the analysis knows the mutex is
// held from construction to every scope exit (return, continue, throw).
class SEGDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SEGDB_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() SEGDB_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Condition variable for util::Mutex. Wait takes the mutex explicitly so
// the analysis can match the caller's held capability against the wait
// precondition (a stored Mutex* would be opaque to it). As with
// std::condition_variable, Wait can wake spuriously — always re-check the
// predicate in a loop (or use the predicate overload).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, blocks, and re-acquires `mu` before
  // returning. The caller must hold `mu`, and still holds it afterwards —
  // REQUIRES (not RELEASE+ACQUIRE) is the annotation that models the net
  // effect across the call.
  void Wait(Mutex& mu) SEGDB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock still owns the mutex
  }

  // Like Wait, but also returns once `deadline` (steady clock) has
  // passed. Returns false on timeout, true otherwise. Same capability
  // contract as Wait; same spurious-wakeup caveat — re-check both the
  // predicate and the clock in a loop.
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      SEGDB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();  // the caller's MutexLock still owns the mutex
    return status == std::cv_status::no_timeout;
  }

  // No predicate overload on purpose: the analysis does not carry the
  // held capability into a lambda body, so a predicate reading guarded
  // state would warn. Write the `while (!pred) cv.Wait(mu);` loop inline,
  // where the guard is visible to the analysis.

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace segdb::util

#endif  // SEGDB_UTIL_SYNC_H_
