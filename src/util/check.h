// SEGDB_CHECK / SEGDB_DCHECK: invariant assertion macros with streamed
// messages, replacing raw assert() throughout segdb (glog/LevelDB style).
//
//   SEGDB_CHECK(a <= b) << "window inverted: [" << a << ", " << b << "]";
//   SEGDB_DCHECK(node != nullptr) << "detached cursor";
//
// SEGDB_CHECK is evaluated in every build; a failure prints the location,
// the condition text and the streamed message to stderr, then aborts.
// SEGDB_DCHECK compiles to a never-executed branch in release builds
// (NDEBUG): the condition still type-checks — so debug-only expressions
// don't rot or trip -Wunused — but is never evaluated at run time.
//
// These macros guard *programming errors* (violated preconditions inside
// segdb itself). Recoverable conditions — bad user input, corrupt pages,
// exhausted resources — are reported through Status, never checked.
#ifndef SEGDB_UTIL_CHECK_H_
#define SEGDB_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace segdb::util {

// Collects one failure message; aborts the process when destroyed (end of
// the full CHECK statement, after all operands have been streamed in).
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << ": check failed: " << condition;
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  ~CheckFailure() {
    const std::string message = stream_.str();
    std::fprintf(stderr, "%s\n", message.c_str());
    std::fflush(stderr);
    std::abort();
  }

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace segdb::util

// `while` keeps the macro a single statement (safe under unbraced if/else)
// and enters at most once: ~CheckFailure aborts before a second test.
#define SEGDB_CHECK(condition)                                        \
  while (!(condition))                                                \
  ::segdb::util::CheckFailure(__FILE__, __LINE__, #condition).stream() \
      << " "

#ifndef NDEBUG
#define SEGDB_DCHECK(condition) SEGDB_CHECK(condition)
#else
// `false && (condition)` keeps the condition (and any variables it names)
// compiled and ODR-used while guaranteeing it is never evaluated; the
// stream operands after the macro are likewise dead code.
#define SEGDB_DCHECK(condition)                                        \
  while (false && (condition))                                         \
  ::segdb::util::CheckFailure(__FILE__, __LINE__, #condition).stream() \
      << " "
#endif

// Marks the commit point of a fault-atomic mutation: the statement after
// which the operation's member-state writes become visible and nothing may
// fail any more (DESIGN.md sections 13-14). Purely declarative — it expands
// to nothing at run time — but the semantic checker (tools/segdb_sema)
// verifies that no allocation-fallible call executes after it, and permits
// member writes only past it (or under a documented rollback).
#define SEGDB_COMMIT_POINT() \
  do {                       \
  } while (false)

// Declares the worst-case I/O-cost class of a query/mutation entry point as
// a set of additive terms, written as the first statement of the function
// body:
//
//   SEGDB_IO_BOUND("log", "t/B");          // O(log_B n + t/B)      Theorem 1
//   SEGDB_IO_BOUND("log", "sqrt", "t/B");  // O(log_B n + sqrt(n/B) + t/B)
//                                          //                       Theorem 2
//   SEGDB_IO_BOUND("scan");                // O(n/B) rebuild/bulk path
//
// Term vocabulary: "1" (constant), "log" (height-bounded descent),
// "sqrt" (slab sweep, sqrt(n/B)), "t/B" (output-sensitive reporting),
// "scan" (linear in index size). Purely declarative — expands to nothing —
// but tools/segdb_sema derives a symbolic Fetch-count class for every
// function over the call graph and fails the build if a derived term
// exceeds the annotation (DESIGN.md section 17). This is how Theorems 1-2
// of the paper stay CI-enforced invariants instead of comments.
#define SEGDB_IO_BOUND(...) \
  do {                      \
  } while (false)

#endif  // SEGDB_UTIL_CHECK_H_
