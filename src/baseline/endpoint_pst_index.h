// Baseline: the *incorrect* reduction of Figure 2 — index the top
// endpoints of line-based segments in a priority search tree and answer a
// segment query with the corresponding 3-sided point query. The paper
// shows (segments 2 and 3 of its Figure 2) that this both misses answers
// and reports non-answers; experiment E11 quantifies the divergence.
#ifndef SEGDB_BASELINE_ENDPOINT_PST_INDEX_H_
#define SEGDB_BASELINE_ENDPOINT_PST_INDEX_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "geom/segment.h"
#include "io/buffer_pool.h"
#include "pst/point_pst.h"
#include "util/status.h"

namespace segdb::baseline {

// Operates on a canonical line-based set (segments crossing a vertical
// base line and extending right, like pst::LinePst with Direction::kRight).
class EndpointPstIndex {
 public:
  EndpointPstIndex(io::BufferPool* pool, int64_t base_x)
      : base_x_(base_x), pst_(pool) {}

  // Stores each segment's far ("top") endpoint as the point (y2', x2)
  // keyed for 3-sided queries; the payload table maps ids back to
  // segments for reporting.
  Status BulkLoad(std::span<const geom::Segment> segments);

  // The Figure 2 reduction: a query segment at abscissa qx spanning
  // [ylo, yhi] becomes the 3-sided query "far-endpoint y in [ylo, yhi],
  // reach >= qx". Returns whatever the reduction yields — deliberately
  // not the exact VS answer.
  Status QueryViaEndpoints(int64_t qx, int64_t ylo, int64_t yhi,
                           std::vector<geom::Segment>* out) const;

  uint64_t size() const { return pst_.size(); }

  // Audits the underlying PST plus the id->payload table agreement.
  Status CheckInvariants() const;

 private:
  int64_t base_x_;
  pst::PointPst pst_;
  std::unordered_map<uint64_t, geom::Segment> payload_;
};

}  // namespace segdb::baseline

#endif  // SEGDB_BASELINE_ENDPOINT_PST_INDEX_H_
