#include "baseline/endpoint_pst_index.h"

#include <string>

#include "util/check.h"

namespace segdb::baseline {

Status EndpointPstIndex::BulkLoad(std::span<const geom::Segment> segments) {
  SEGDB_IO_BOUND("scan");
  std::vector<pst::PointRecord> points;
  points.reserve(segments.size());
  // Build the payload map aside: a BulkLoad that fails (bad input or a
  // fault inside the PST build) must not leave payload_ cleared or
  // half-filled while the PST still answers for the old content.
  std::unordered_map<uint64_t, geom::Segment> payload;
  for (const geom::Segment& s : segments) {
    if (!(s.x1 <= base_x_ && base_x_ < s.x2)) {
      return Status::InvalidArgument("segment " + std::to_string(s.id) +
                                     " is not line-based for this base");
    }
    // Point = (far-endpoint ordinate, reach); the 3-sided query keys.
    points.push_back(pst::PointRecord{s.y2, s.x2, s.id});
    payload.emplace(s.id, s);
  }
  SEGDB_RETURN_IF_ERROR(pst_.BulkLoad(points));
  SEGDB_COMMIT_POINT();
  payload_ = std::move(payload);
  return Status::OK();
}

Status EndpointPstIndex::QueryViaEndpoints(
    int64_t qx, int64_t ylo, int64_t yhi,
    std::vector<geom::Segment>* out) const {
  SEGDB_IO_BOUND("log", "t/B");
  std::vector<pst::PointRecord> hits;
  SEGDB_RETURN_IF_ERROR(pst_.Query3Sided(ylo, yhi, qx, &hits));
  out->reserve(out->size() + hits.size());
  for (const auto& p : hits) {
    out->push_back(payload_.at(p.id));
  }
  return Status::OK();
}

Status EndpointPstIndex::CheckInvariants() const {
  SEGDB_RETURN_IF_ERROR(pst_.CheckInvariants());
  if (payload_.size() != pst_.size()) {
    return Status::Corruption("payload table size diverges from the PST");
  }
  std::vector<pst::PointRecord> points;
  SEGDB_RETURN_IF_ERROR(pst_.CollectAll(&points));
  for (const auto& p : points) {
    auto it = payload_.find(p.id);
    if (it == payload_.end()) {
      return Status::Corruption("PST point without a payload segment");
    }
    const geom::Segment& s = it->second;
    // The stored point must be exactly (far-endpoint ordinate, reach) of a
    // segment that is line-based for this base abscissa.
    if (p.x != s.y2 || p.y != s.x2 || !(s.x1 <= base_x_ && base_x_ < s.x2)) {
      return Status::Corruption("PST point disagrees with its segment");
    }
  }
  return Status::OK();
}

}  // namespace segdb::baseline
