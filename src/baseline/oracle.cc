#include "baseline/oracle.h"

#include "geom/predicates.h"
#include "util/check.h"

namespace segdb::baseline {

Status OracleIndex::BulkLoad(std::span<const geom::Segment> segments) {
  SEGDB_IO_BOUND("1");  // purely in-memory; the oracle does no page I/O
  segments_.assign(segments.begin(), segments.end());
  return Status::OK();
}

Status OracleIndex::Insert(const geom::Segment& segment) {
  SEGDB_IO_BOUND("1");
  segments_.push_back(segment);
  return Status::OK();
}

Status OracleIndex::Erase(const geom::Segment& segment) {
  SEGDB_IO_BOUND("1");
  for (auto it = segments_.begin(); it != segments_.end(); ++it) {
    if (*it == segment) {
      segments_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("segment not stored");
}

Status OracleIndex::Query(const core::VerticalSegmentQuery& q,
                          std::vector<geom::Segment>* out) const {
  SEGDB_IO_BOUND("1");
  if (q.ylo > q.yhi) return Status::InvalidArgument("ylo > yhi");
  for (const geom::Segment& s : segments_) {
    if (geom::IntersectsVerticalSegment(s, q.x0, q.ylo, q.yhi)) {
      out->push_back(s);
    }
  }
  return Status::OK();
}

Status StabFilterIndex::Query(const core::VerticalSegmentQuery& q,
                              std::vector<geom::Segment>* out) const {
  SEGDB_IO_BOUND("scan");  // cost of the wrapped index's line query
  if (q.ylo > q.yhi) return Status::InvalidArgument("ylo > yhi");
  std::vector<geom::Segment> stabbed;
  SEGDB_RETURN_IF_ERROR(
      inner_->Query(core::VerticalSegmentQuery::Line(q.x0), &stabbed));
  for (const geom::Segment& s : stabbed) {
    if (geom::IntersectsVerticalSegment(s, q.x0, q.ylo, q.yhi)) {
      out->push_back(s);
    }
  }
  return Status::OK();
}

}  // namespace segdb::baseline
