// Baseline: a paged R-tree over segment bounding boxes, STR bulk-packed
// (Sort-Tile-Recursive) with Guttman-style quadratic-cost linear-split
// insertion. The "practical spatial index" a GIS would reach for instead
// of a dedicated segment index; experiment E8 measures where the paper's
// structures beat it on VS queries.
//
// Query: descend every subtree whose MBR intersects the query segment's
// degenerate rectangle [x0, x0] x [ylo, yhi]; at leaves run the exact
// intersection predicate. An R-tree offers no output-sensitivity
// guarantee — skewed long segments inflate MBR overlap — which is
// precisely the gap the paper's structures close.
#ifndef SEGDB_BASELINE_RTREE_INDEX_H_
#define SEGDB_BASELINE_RTREE_INDEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/segment_index.h"
#include "io/buffer_pool.h"

namespace segdb::baseline {

struct RTreeOptions {
  // Max entries per node: 0 = derive from the page size.
  uint32_t node_capacity = 0;
};

class RTreeIndex final : public core::SegmentIndex {
 public:
  explicit RTreeIndex(io::BufferPool* pool, RTreeOptions options = {});
  ~RTreeIndex() override;

  RTreeIndex(const RTreeIndex&) = delete;
  RTreeIndex& operator=(const RTreeIndex&) = delete;

  Status BulkLoad(std::span<const geom::Segment> segments) override;
  Status Insert(const geom::Segment& segment) override;
  Status Query(const core::VerticalSegmentQuery& query,
               std::vector<geom::Segment>* out) const override;
  uint64_t size() const override { return size_; }
  uint64_t page_count() const override { return page_count_; }
  std::string name() const override { return "rtree-str"; }

  uint32_t height() const { return height_; }

  // Checks MBR containment and entry counts over the whole tree.
  Status CheckInvariants() const override;

 private:
  struct Rect {
    int64_t xmin, ymin, xmax, ymax;
  };
  struct Entry {        // one slot in an internal node or leaf
    Rect rect;          // MBR (for a leaf entry: the segment's bbox)
    io::PageId child;   // internal: child page; leaf: unused
    geom::Segment seg;  // leaf: payload
  };

  static Rect BoundsOf(const geom::Segment& s);
  static Rect Merge(const Rect& a, const Rect& b);
  static bool Overlaps(const Rect& a, const Rect& b);
  static __int128 Area(const Rect& r);
  static __int128 Enlargement(const Rect& r, const Rect& add);

  uint32_t Capacity() const { return capacity_; }

  // Node page layout helpers.
  static bool IsLeaf(const io::Page& p) { return p.ReadAt<uint8_t>(0) != 0; }
  static void SetLeaf(io::Page& p, bool leaf) {
    p.WriteAt<uint8_t>(0, leaf ? 1 : 0);
  }
  static uint32_t Count(const io::Page& p) { return p.ReadAt<uint32_t>(4); }
  static void SetCount(io::Page& p, uint32_t c) { p.WriteAt<uint32_t>(4, c); }
  static uint32_t EntryOff(uint32_t i) {
    return 8 + i * static_cast<uint32_t>(sizeof(Entry));
  }

  Result<io::PageId> PackLevel(std::vector<Entry> entries, bool leaf_level,
                               uint32_t* height);
  Status FreeSubtree(io::PageId id);
  Result<Rect> NodeRect(io::PageId id) const;

  // Insertion plumbing (Guttman linear split).
  struct SplitResult {
    bool split = false;
    Rect left_rect{}, right_rect{};
    io::PageId right = io::kInvalidPageId;
  };
  // `reserve` holds pre-allocated page ids for the worst-case split
  // cascade (one per level plus a new root), so no allocation can fail
  // after the first page of the tree has been touched.
  Result<SplitResult> InsertRecursive(io::PageId node, uint32_t level,
                                      const Entry& entry, Rect* new_rect,
                                      std::vector<io::PageId>* reserve);
  static void LinearSplit(std::vector<Entry>& all, std::vector<Entry>* left,
                          std::vector<Entry>* right);

  Status QueryRecursive(io::PageId node, const Rect& qrect,
                        const core::VerticalSegmentQuery& q,
                        std::vector<geom::Segment>* out) const;
  Status CheckSubtree(io::PageId id, const Rect& expect, uint64_t* count) const;

  io::BufferPool* pool_;
  uint32_t capacity_ = 0;
  io::PageId root_ = io::kInvalidPageId;
  uint32_t height_ = 0;
  uint64_t size_ = 0;
  uint64_t page_count_ = 0;
};

}  // namespace segdb::baseline

#endif  // SEGDB_BASELINE_RTREE_INDEX_H_
