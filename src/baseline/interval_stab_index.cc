#include "baseline/interval_stab_index.h"

#include "geom/predicates.h"
#include "util/check.h"

namespace segdb::baseline {

Status IntervalStabIndex::Query(const core::VerticalSegmentQuery& q,
                                std::vector<geom::Segment>* out) const {
  // t here is the *stabbing* output, which can dominate the VS output —
  // exactly the gap experiment E8 measures (see the file comment).
  SEGDB_IO_BOUND("log", "sqrt", "t/B");
  if (q.ylo > q.yhi) return Status::InvalidArgument("ylo > yhi");
  std::vector<geom::Segment> stabbed;
  SEGDB_RETURN_IF_ERROR(tree_.Stab(q.x0, &stabbed));
  for (const geom::Segment& s : stabbed) {
    if (geom::IntersectsVerticalSegment(s, q.x0, q.ylo, q.yhi)) {
      out->push_back(s);
    }
  }
  return Status::OK();
}

}  // namespace segdb::baseline
