#include "baseline/full_scan_index.h"

#include <algorithm>

#include "geom/filter_kernel.h"
#include "geom/predicates.h"
#include "io/columnar_page_view.h"
#include "util/check.h"

namespace segdb::baseline {

namespace {
constexpr uint32_t kHeader = 8;  // [u32 count][pad]
}  // namespace

FullScanIndex::~FullScanIndex() { Clear().IgnoreError(); }

uint32_t FullScanIndex::PerPage() const {
  return io::ColumnarRegionCapacity(pool_->page_size() - kHeader);
}

Status FullScanIndex::Clear() {
  for (io::PageId id : pages_) SEGDB_RETURN_IF_ERROR(pool_->FreePage(id));
  pages_.clear();
  size_ = 0;
  return Status::OK();
}

Status FullScanIndex::BulkLoad(std::span<const geom::Segment> segments) {
  SEGDB_IO_BOUND("scan");
  // Build the new page list aside, then swap: a failed allocation
  // mid-build must leave the previous contents intact.
  std::vector<io::PageId> fresh;
  size_t i = 0;
  while (i < segments.size()) {
    const uint32_t take = static_cast<uint32_t>(
        std::min<size_t>(PerPage(), segments.size() - i));
    auto ref = pool_->NewPage();
    if (!ref.ok()) {
      for (io::PageId id : fresh) pool_->FreePage(id).IgnoreError();
      return ref.status();
    }
    io::Page& p = ref.value().page();
    p.WriteAt<uint32_t>(0, take);
    // Columnar strips at the fixed page capacity: Insert/Erase mutate
    // counts in place, so the stride must not depend on the fill level.
    io::ColumnarPageView(&p, kHeader, PerPage())
        .WriteRange(0, segments.data() + i, take);
    ref.value().MarkDirty();
    fresh.push_back(ref.value().page_id());
    i += take;
  }
  SEGDB_RETURN_IF_ERROR(Clear());  // FreePage is reliable by contract
  pages_ = std::move(fresh);
  size_ = segments.size();
  return Status::OK();
}

Status FullScanIndex::Insert(const geom::Segment& segment) {
  SEGDB_IO_BOUND("1");  // append to the last page, or allocate one
  if (!pages_.empty()) {
    auto ref = pool_->Fetch(pages_.back());
    if (!ref.ok()) return ref.status();
    io::Page& p = ref.value().page();
    const uint32_t count = p.ReadAt<uint32_t>(0);
    if (count < PerPage()) {
      io::ColumnarPageView(&p, kHeader, PerPage()).Set(count, segment);
      p.WriteAt<uint32_t>(0, count + 1);
      ref.value().MarkDirty();
      ++size_;
      return Status::OK();
    }
  }
  auto ref = pool_->NewPage();
  if (!ref.ok()) return ref.status();
  io::Page& p = ref.value().page();
  p.WriteAt<uint32_t>(0, 1);
  io::ColumnarPageView(&p, kHeader, PerPage()).Set(0, segment);
  ref.value().MarkDirty();
  pages_.push_back(ref.value().page_id());
  ++size_;
  return Status::OK();
}

Status FullScanIndex::Erase(const geom::Segment& segment) {
  SEGDB_IO_BOUND("scan");
  for (io::PageId id : pages_) {
    auto ref = pool_->Fetch(id);
    if (!ref.ok()) return ref.status();
    io::Page& p = ref.value().page();
    const uint32_t count = p.ReadAt<uint32_t>(0);
    io::ColumnarPageView view(&p, kHeader, PerPage());
    for (uint32_t i = 0; i < count; ++i) {
      const geom::Segment s = view.Get(i);
      if (s == segment) {
        // Shift the tail left by one slot (pages may underfill).
        for (uint32_t k = i + 1; k < count; ++k) {
          view.Set(k - 1, view.Get(k));
        }
        p.WriteAt<uint32_t>(0, count - 1);
        ref.value().MarkDirty();
        --size_;
        return Status::OK();
      }
    }
  }
  return Status::NotFound("segment not stored");
}

Status FullScanIndex::Query(const core::VerticalSegmentQuery& q,
                            std::vector<geom::Segment>* out) const {
  SEGDB_IO_BOUND("scan");  // the baseline the paper's structures beat
  if (q.ylo > q.yhi) return Status::InvalidArgument("ylo > yhi");
  for (io::PageId id : pages_) {
    auto ref = pool_->Fetch(id);
    if (!ref.ok()) return ref.status();
    const io::Page& p = ref.value().page();
    const uint32_t count = p.ReadAt<uint32_t>(0);
    // The baseline keeps its brute-force shape but scans each page with
    // the same branchless kernel + bulk gather as the real indexes.
    const io::ConstColumnarPageView view(p, kHeader, PerPage());
    geom::ResultBuffer& scratch = geom::GetThreadFilterScratch();
    uint32_t* idx = scratch.ReserveIndices(count);
    const uint32_t hits = geom::ActiveFilterKernel().filter_vs(
        view.strips(), count, q.x0, q.ylo, q.yhi, idx);
    view.AppendMatches(idx, hits, out);
  }
  return Status::OK();
}

Status FullScanIndex::CheckInvariants() const {
  uint64_t total = 0;
  for (io::PageId id : pages_) {
    auto ref = pool_->Fetch(id);
    if (!ref.ok()) return ref.status();
    const uint32_t count = ref.value().page().ReadAt<uint32_t>(0);
    if (count > PerPage()) {
      return Status::Corruption("full-scan page over capacity");
    }
    total += count;
  }
  if (total != size_) {
    return Status::Corruption("full-scan size() bookkeeping mismatch");
  }
  return Status::OK();
}

}  // namespace segdb::baseline
