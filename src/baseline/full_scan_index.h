// Baseline: linear scan over packed segment pages. O(n) I/Os per query,
// O(n) blocks — the floor every index must beat (experiment E8).
#ifndef SEGDB_BASELINE_FULL_SCAN_INDEX_H_
#define SEGDB_BASELINE_FULL_SCAN_INDEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/segment_index.h"
#include "io/buffer_pool.h"

namespace segdb::baseline {

class FullScanIndex final : public core::SegmentIndex {
 public:
  explicit FullScanIndex(io::BufferPool* pool) : pool_(pool) {}
  ~FullScanIndex() override;

  FullScanIndex(const FullScanIndex&) = delete;
  FullScanIndex& operator=(const FullScanIndex&) = delete;

  Status BulkLoad(std::span<const geom::Segment> segments) override;
  Status Insert(const geom::Segment& segment) override;
  Status Erase(const geom::Segment& segment) override;
  Status Query(const core::VerticalSegmentQuery& query,
               std::vector<geom::Segment>* out) const override;
  uint64_t size() const override { return size_; }
  uint64_t page_count() const override { return pages_.size(); }
  std::string name() const override { return "full-scan"; }

  // Audits page bookkeeping: per-page counts against capacity and their
  // sum against size().
  Status CheckInvariants() const override;

 private:
  uint32_t PerPage() const;
  Status Clear();

  io::BufferPool* pool_;
  std::vector<io::PageId> pages_;
  uint64_t size_ = 0;
};

}  // namespace segdb::baseline

#endif  // SEGDB_BASELINE_FULL_SCAN_INDEX_H_
