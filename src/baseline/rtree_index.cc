#include "baseline/rtree_index.h"

#include <algorithm>
#include <cmath>

#include "geom/predicates.h"
#include "util/math.h"
#include "util/check.h"

namespace segdb::baseline {

namespace {
using geom::Segment;
}  // namespace

RTreeIndex::RTreeIndex(io::BufferPool* pool, RTreeOptions options)
    : pool_(pool) {
  const uint32_t fit =
      (pool_->page_size() - 8) / static_cast<uint32_t>(sizeof(Entry));
  capacity_ = options.node_capacity != 0
                  ? std::min(options.node_capacity, fit)
                  : fit;
  SEGDB_DCHECK(capacity_ >= 4) << "page too small for R-tree nodes";
}

RTreeIndex::~RTreeIndex() {
  if (root_ != io::kInvalidPageId) FreeSubtree(root_).IgnoreError();
}

RTreeIndex::Rect RTreeIndex::BoundsOf(const Segment& s) {
  return Rect{s.x1, s.min_y(), s.x2, s.max_y()};
}

RTreeIndex::Rect RTreeIndex::Merge(const Rect& a, const Rect& b) {
  return Rect{std::min(a.xmin, b.xmin), std::min(a.ymin, b.ymin),
              std::max(a.xmax, b.xmax), std::max(a.ymax, b.ymax)};
}

bool RTreeIndex::Overlaps(const Rect& a, const Rect& b) {
  return a.xmin <= b.xmax && b.xmin <= a.xmax && a.ymin <= b.ymax &&
         b.ymin <= a.ymax;
}

__int128 RTreeIndex::Area(const Rect& r) {
  return static_cast<__int128>(r.xmax - r.xmin) *
         static_cast<__int128>(r.ymax - r.ymin);
}

__int128 RTreeIndex::Enlargement(const Rect& r, const Rect& add) {
  return Area(Merge(r, add)) - Area(r);
}

Result<io::PageId> RTreeIndex::PackLevel(std::vector<Entry> entries,
                                         bool leaf_level, uint32_t* height) {
  // STR: tile by x into vertical strips of ~sqrt(slices) pages, sort each
  // strip by y-center, pack runs of `capacity_`.
  //
  // Fault-atomic: a failed allocation frees every page this pack already
  // claimed before the error returns, so callers see an all-or-nothing
  // build.
  std::vector<io::PageId> allocated;
  const auto unwind = [&](const Status& st) {
    for (io::PageId id : allocated) pool_->FreePage(id).IgnoreError();
    page_count_ -= allocated.size();
    return st;
  };
  *height = 1;
  bool leaf = leaf_level;
  while (true) {
    const uint64_t pages_needed = CeilDiv(entries.size(), capacity_);
    if (pages_needed <= 1) {
      auto ref = pool_->NewPage();
      if (!ref.ok()) return unwind(ref.status());
      io::Page& p = ref.value().page();
      SetLeaf(p, leaf);
      SetCount(p, static_cast<uint32_t>(entries.size()));
      for (size_t i = 0; i < entries.size(); ++i) {
        p.WriteAt<Entry>(EntryOff(static_cast<uint32_t>(i)), entries[i]);
      }
      ref.value().MarkDirty();
      ++page_count_;
      return ref.value().page_id();
    }
    const uint32_t strips = static_cast<uint32_t>(std::ceil(
        std::sqrt(static_cast<double>(pages_needed))));
    const uint64_t per_strip = CeilDiv(entries.size(), strips);
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                return a.rect.xmin + a.rect.xmax < b.rect.xmin + b.rect.xmax;
              });
    std::vector<Entry> parents;
    for (size_t s = 0; s < entries.size(); s += per_strip) {
      const size_t end = std::min(entries.size(), s + per_strip);
      std::sort(entries.begin() + s, entries.begin() + end,
                [](const Entry& a, const Entry& b) {
                  return a.rect.ymin + a.rect.ymax <
                         b.rect.ymin + b.rect.ymax;
                });
      for (size_t i = s; i < end; i += capacity_) {
        const uint32_t take = static_cast<uint32_t>(
            std::min<size_t>(capacity_, end - i));
        auto ref = pool_->NewPage();
        if (!ref.ok()) return unwind(ref.status());
        io::Page& p = ref.value().page();
        SetLeaf(p, leaf);
        SetCount(p, take);
        Rect mbr = entries[i].rect;
        for (uint32_t k = 0; k < take; ++k) {
          p.WriteAt<Entry>(EntryOff(k), entries[i + k]);
          mbr = Merge(mbr, entries[i + k].rect);
        }
        ref.value().MarkDirty();
        // SEMA-OK: this increment is rolled back by unwind(), which
        // subtracts allocated.size() when a later allocation fails.
        ++page_count_;
        allocated.push_back(ref.value().page_id());
        Entry parent{};
        parent.rect = mbr;
        parent.child = ref.value().page_id();
        parents.push_back(parent);
      }
    }
    entries = std::move(parents);
    leaf = false;
    ++*height;
  }
}

Status RTreeIndex::FreeSubtree(io::PageId id) {
  std::vector<io::PageId> children;
  {
    auto ref = pool_->Fetch(id);
    if (!ref.ok()) return ref.status();
    const io::Page& p = ref.value().page();
    if (!IsLeaf(p)) {
      for (uint32_t i = 0; i < Count(p); ++i) {
        children.push_back(p.ReadAt<Entry>(EntryOff(i)).child);
      }
    }
  }
  for (io::PageId c : children) SEGDB_RETURN_IF_ERROR(FreeSubtree(c));
  SEGDB_RETURN_IF_ERROR(pool_->FreePage(id));
  --page_count_;
  return Status::OK();
}

Status RTreeIndex::BulkLoad(std::span<const Segment> segments) {
  SEGDB_IO_BOUND("scan");
  // Pack the replacement tree aside, then swap: a failed allocation
  // mid-pack must leave the previous contents intact and queryable.
  io::PageId fresh_root = io::kInvalidPageId;
  uint32_t fresh_height = 0;
  if (!segments.empty()) {
    std::vector<Entry> entries;
    entries.reserve(segments.size());
    for (const Segment& s : segments) {
      Entry e{};
      e.rect = BoundsOf(s);
      e.child = io::kInvalidPageId;
      e.seg = s;
      entries.push_back(e);
    }
    Result<io::PageId> root =
        PackLevel(std::move(entries), true, &fresh_height);
    if (!root.ok()) return root.status();
    fresh_root = root.value();
  }
  if (root_ != io::kInvalidPageId) {
    SEGDB_RETURN_IF_ERROR(FreeSubtree(root_));  // reliable metadata ops
  }
  root_ = fresh_root;
  height_ = fresh_height;
  size_ = segments.size();
  return Status::OK();
}

void RTreeIndex::LinearSplit(std::vector<Entry>& all,
                             std::vector<Entry>* left,
                             std::vector<Entry>* right) {
  // Guttman's linear pick-seeds on x, then y; assign by least enlargement
  // with a min-fill of 40%.
  size_t lo_x = 0, hi_x = 0, lo_y = 0, hi_y = 0;
  for (size_t i = 1; i < all.size(); ++i) {
    if (all[i].rect.xmin > all[hi_x].rect.xmin) hi_x = i;
    if (all[i].rect.xmax < all[lo_x].rect.xmax) lo_x = i;
    if (all[i].rect.ymin > all[hi_y].rect.ymin) hi_y = i;
    if (all[i].rect.ymax < all[lo_y].rect.ymax) lo_y = i;
  }
  size_t seed_a = lo_x, seed_b = hi_x;
  if (seed_a == seed_b) {
    seed_a = lo_y;
    seed_b = hi_y;
  }
  if (seed_a == seed_b) {
    seed_b = (seed_a + 1) % all.size();
  }
  Rect ra = all[seed_a].rect, rb = all[seed_b].rect;
  const size_t min_fill = std::max<size_t>(1, all.size() * 2 / 5);
  left->push_back(all[seed_a]);
  right->push_back(all[seed_b]);
  std::vector<Entry> rest;
  rest.reserve(all.size() - 2);
  for (size_t i = 0; i < all.size(); ++i) {
    if (i != seed_a && i != seed_b) rest.push_back(all[i]);
  }
  for (size_t i = 0; i < rest.size(); ++i) {
    const size_t remaining = rest.size() - i;
    // Force-assign when a group needs every remaining entry to reach the
    // minimum fill.
    if (left->size() < min_fill && min_fill - left->size() >= remaining) {
      left->push_back(rest[i]);
      ra = Merge(ra, rest[i].rect);
      continue;
    }
    if (right->size() < min_fill && min_fill - right->size() >= remaining) {
      right->push_back(rest[i]);
      rb = Merge(rb, rest[i].rect);
      continue;
    }
    if (Enlargement(ra, rest[i].rect) <= Enlargement(rb, rest[i].rect)) {
      left->push_back(rest[i]);
      ra = Merge(ra, rest[i].rect);
    } else {
      right->push_back(rest[i]);
      rb = Merge(rb, rest[i].rect);
    }
  }
}

Result<RTreeIndex::SplitResult> RTreeIndex::InsertRecursive(
    io::PageId node, uint32_t level, const Entry& entry, Rect* new_rect,
    std::vector<io::PageId>* reserve) {
  auto ref = pool_->Fetch(node);
  if (!ref.ok()) return ref.status();
  io::Page& p = ref.value().page();
  const uint32_t count = Count(p);

  if (level == 1) {
    // This is the target (leaf) level.
    std::vector<Entry> entries(count);
    for (uint32_t i = 0; i < count; ++i) {
      entries[i] = p.ReadAt<Entry>(EntryOff(i));
    }
    entries.push_back(entry);
    if (entries.size() <= capacity_) {
      p.WriteAt<Entry>(EntryOff(count), entry);
      SetCount(p, count + 1);
      ref.value().MarkDirty();
      Rect mbr = entries[0].rect;
      for (const Entry& e : entries) mbr = Merge(mbr, e.rect);
      *new_rect = mbr;
      return SplitResult{};
    }
    std::vector<Entry> left, right;
    LinearSplit(entries, &left, &right);
    SetCount(p, static_cast<uint32_t>(left.size()));
    Rect lr = left[0].rect, rr = right[0].rect;
    for (size_t i = 0; i < left.size(); ++i) {
      p.WriteAt<Entry>(EntryOff(static_cast<uint32_t>(i)), left[i]);
      lr = Merge(lr, left[i].rect);
    }
    ref.value().MarkDirty();
    const bool was_leaf = IsLeaf(p);
    { io::PageRef done = std::move(ref.value()); }  // drop, then fetch
    // The sibling comes from the pre-allocated reserve, so the cascade
    // cannot fail here with the node already truncated to its left half.
    SEGDB_DCHECK(!reserve->empty());
    const io::PageId sibling = reserve->back();
    reserve->pop_back();
    auto nref = pool_->Fetch(sibling);
    if (!nref.ok()) return nref.status();
    ++page_count_;
    io::Page& np = nref.value().page();
    SetLeaf(np, was_leaf);
    SetCount(np, static_cast<uint32_t>(right.size()));
    for (size_t i = 0; i < right.size(); ++i) {
      np.WriteAt<Entry>(EntryOff(static_cast<uint32_t>(i)), right[i]);
      rr = Merge(rr, right[i].rect);
    }
    nref.value().MarkDirty();
    SplitResult result;
    result.split = true;
    result.left_rect = lr;
    result.right_rect = rr;
    result.right = nref.value().page_id();
    *new_rect = lr;
    return result;
  }

  // Choose the child needing least enlargement.
  uint32_t best = 0;
  __int128 best_enl = 0;
  __int128 best_area = 0;
  for (uint32_t i = 0; i < count; ++i) {
    const Entry e = p.ReadAt<Entry>(EntryOff(i));
    const __int128 enl = Enlargement(e.rect, entry.rect);
    const __int128 area = Area(e.rect);
    if (i == 0 || enl < best_enl || (enl == best_enl && area < best_area)) {
      best = i;
      best_enl = enl;
      best_area = area;
    }
  }
  Entry chosen = p.ReadAt<Entry>(EntryOff(best));
  { io::PageRef done = std::move(ref.value()); }  // drop before recursing
  Rect child_rect{};
  Result<SplitResult> sub =
      InsertRecursive(chosen.child, level - 1, entry, &child_rect, reserve);
  if (!sub.ok()) return sub.status();

  auto wref = pool_->Fetch(node);
  if (!wref.ok()) return wref.status();
  io::Page& wp = wref.value().page();
  chosen.rect = sub.value().split ? sub.value().left_rect : child_rect;
  wp.WriteAt<Entry>(EntryOff(best), chosen);
  wref.value().MarkDirty();

  SplitResult result;
  if (sub.value().split) {
    Entry extra{};
    extra.rect = sub.value().right_rect;
    extra.child = sub.value().right;
    const uint32_t wcount = Count(wp);
    if (wcount < capacity_) {
      wp.WriteAt<Entry>(EntryOff(wcount), extra);
      SetCount(wp, wcount + 1);
    } else {
      std::vector<Entry> entries(wcount);
      for (uint32_t i = 0; i < wcount; ++i) {
        entries[i] = wp.ReadAt<Entry>(EntryOff(i));
      }
      entries.push_back(extra);
      std::vector<Entry> left, right;
      LinearSplit(entries, &left, &right);
      SetCount(wp, static_cast<uint32_t>(left.size()));
      Rect lr = left[0].rect, rr = right[0].rect;
      for (size_t i = 0; i < left.size(); ++i) {
        wp.WriteAt<Entry>(EntryOff(static_cast<uint32_t>(i)), left[i]);
        lr = Merge(lr, left[i].rect);
      }
      { io::PageRef done = std::move(wref.value()); }  // drop, then fetch
      SEGDB_DCHECK(!reserve->empty());
      const io::PageId sibling = reserve->back();
      reserve->pop_back();
      auto nref = pool_->Fetch(sibling);
      if (!nref.ok()) return nref.status();
      ++page_count_;
      io::Page& np = nref.value().page();
      SetLeaf(np, false);
      SetCount(np, static_cast<uint32_t>(right.size()));
      for (size_t i = 0; i < right.size(); ++i) {
        np.WriteAt<Entry>(EntryOff(static_cast<uint32_t>(i)), right[i]);
        rr = Merge(rr, right[i].rect);
      }
      nref.value().MarkDirty();
      result.split = true;
      result.left_rect = lr;
      result.right_rect = rr;
      result.right = nref.value().page_id();
      *new_rect = lr;
      return result;
    }
  }
  // Recompute this node's MBR.
  const uint32_t wcount = Count(wp);
  Rect mbr = wp.ReadAt<Entry>(EntryOff(0)).rect;
  for (uint32_t i = 1; i < wcount; ++i) {
    mbr = Merge(mbr, wp.ReadAt<Entry>(EntryOff(i)).rect);
  }
  *new_rect = mbr;
  return result;
}

Status RTreeIndex::Insert(const Segment& segment) {
  SEGDB_IO_BOUND("log");  // one descent plus a split cascade
  Entry entry{};
  entry.rect = BoundsOf(segment);
  entry.child = io::kInvalidPageId;
  entry.seg = segment;
  if (root_ == io::kInvalidPageId) {
    auto ref = pool_->NewPage();
    if (!ref.ok()) return ref.status();
    ++page_count_;
    io::Page& p = ref.value().page();
    SetLeaf(p, true);
    SetCount(p, 1);
    p.WriteAt<Entry>(EntryOff(0), entry);
    ref.value().MarkDirty();
    root_ = ref.value().page_id();
    height_ = 1;
    ++size_;
    return Status::OK();
  }
  // Pre-allocate the worst-case split cascade (one sibling per level plus
  // a new root) before touching any node: every allocation that can fail
  // happens while the tree is still untouched, so a fault leaves it
  // exactly as it was. Unused reserves are returned afterwards.
  std::vector<io::PageId> reserve;
  reserve.reserve(height_ + 1);
  for (uint32_t i = 0; i < height_ + 1; ++i) {
    auto ref = pool_->NewPage();
    if (!ref.ok()) {
      // SEMA-LOOP: height (rolls back at most height_+1 reserved pages)
      for (io::PageId id : reserve) pool_->FreePage(id).IgnoreError();
      return ref.status();
    }
    reserve.push_back(ref.value().page_id());
  }
  Rect new_rect{};
  Result<SplitResult> result =
      InsertRecursive(root_, height_, entry, &new_rect, &reserve);
  if (!result.ok()) {
    // SEMA-LOOP: height (rolls back at most height_+1 reserved pages)
    for (io::PageId id : reserve) pool_->FreePage(id).IgnoreError();
    return result.status();
  }
  if (result.value().split) {
    SEGDB_DCHECK(!reserve.empty());
    const io::PageId new_root = reserve.back();
    reserve.pop_back();
    auto ref = pool_->Fetch(new_root);
    if (!ref.ok()) return ref.status();
    ++page_count_;
    io::Page& p = ref.value().page();
    SetLeaf(p, false);
    SetCount(p, 2);
    Entry l{}, r{};
    l.rect = result.value().left_rect;
    l.child = root_;
    r.rect = result.value().right_rect;
    r.child = result.value().right;
    p.WriteAt<Entry>(EntryOff(0), l);
    p.WriteAt<Entry>(EntryOff(1), r);
    ref.value().MarkDirty();
    root_ = new_root;
    ++height_;
  }
  // SEMA-LOOP: height (at most height_+1 unused cascade reserves)
  for (io::PageId id : reserve) {
    pool_->FreePage(id).IgnoreError();
  }
  ++size_;
  return Status::OK();
}

Status RTreeIndex::QueryRecursive(io::PageId node, const Rect& qrect,
                                  const core::VerticalSegmentQuery& q,
                                  std::vector<Segment>* out) const {
  std::vector<io::PageId> children;
  {
    auto ref = pool_->Fetch(node);
    if (!ref.ok()) return ref.status();
    const io::Page& p = ref.value().page();
    const uint32_t count = Count(p);
    if (IsLeaf(p)) {
      for (uint32_t i = 0; i < count; ++i) {
        const Entry e = p.ReadAt<Entry>(EntryOff(i));
        if (Overlaps(e.rect, qrect) &&
            geom::IntersectsVerticalSegment(e.seg, q.x0, q.ylo, q.yhi)) {
          out->push_back(e.seg);
        }
      }
      return Status::OK();
    }
    for (uint32_t i = 0; i < count; ++i) {
      const Entry e = p.ReadAt<Entry>(EntryOff(i));
      if (Overlaps(e.rect, qrect)) children.push_back(e.child);
    }
  }
  for (io::PageId c : children) {
    SEGDB_RETURN_IF_ERROR(QueryRecursive(c, qrect, q, out));
  }
  return Status::OK();
}

Status RTreeIndex::Query(const core::VerticalSegmentQuery& q,
                         std::vector<Segment>* out) const {
  // R-trees give no worst-case output-sensitive bound: overlapping MBRs
  // can force the recursion through the whole tree (experiment E8).
  SEGDB_IO_BOUND("scan");
  if (q.ylo > q.yhi) return Status::InvalidArgument("ylo > yhi");
  if (root_ == io::kInvalidPageId) return Status::OK();
  const Rect qrect{q.x0, q.ylo, q.x0, q.yhi};
  return QueryRecursive(root_, qrect, q, out);
}

Result<RTreeIndex::Rect> RTreeIndex::NodeRect(io::PageId id) const {
  auto ref = pool_->Fetch(id);
  if (!ref.ok()) return ref.status();
  const io::Page& p = ref.value().page();
  Rect mbr = p.ReadAt<Entry>(EntryOff(0)).rect;
  for (uint32_t i = 1; i < Count(p); ++i) {
    mbr = Merge(mbr, p.ReadAt<Entry>(EntryOff(i)).rect);
  }
  return mbr;
}

Status RTreeIndex::CheckSubtree(io::PageId id, const Rect& expect,
                                uint64_t* count) const {
  auto ref = pool_->Fetch(id);
  if (!ref.ok()) return ref.status();
  const io::Page& p = ref.value().page();
  const uint32_t n = Count(p);
  if (n == 0) return Status::Corruption("empty R-tree node");
  uint64_t total = 0;
  Rect mbr = p.ReadAt<Entry>(EntryOff(0)).rect;
  std::vector<Entry> entries(n);
  for (uint32_t i = 0; i < n; ++i) {
    entries[i] = p.ReadAt<Entry>(EntryOff(i));
    mbr = Merge(mbr, entries[i].rect);
  }
  if (mbr.xmin != expect.xmin || mbr.ymin != expect.ymin ||
      mbr.xmax != expect.xmax || mbr.ymax != expect.ymax) {
    return Status::Corruption("stale MBR in parent entry");
  }
  if (IsLeaf(p)) {
    for (const Entry& e : entries) {
      const Rect b = BoundsOf(e.seg);
      if (b.xmin != e.rect.xmin || b.ymin != e.rect.ymin ||
          b.xmax != e.rect.xmax || b.ymax != e.rect.ymax) {
        return Status::Corruption("leaf entry rect mismatch");
      }
    }
    *count = n;
    return Status::OK();
  }
  { io::PageRef done = std::move(ref.value()); }  // drop before recursing
  for (const Entry& e : entries) {
    uint64_t sub = 0;
    SEGDB_RETURN_IF_ERROR(CheckSubtree(e.child, e.rect, &sub));
    total += sub;
  }
  *count = total;
  return Status::OK();
}

Status RTreeIndex::CheckInvariants() const {
  if (root_ == io::kInvalidPageId) {
    return size_ == 0 ? Status::OK() : Status::Corruption("size_ mismatch");
  }
  Result<Rect> mbr = NodeRect(root_);
  if (!mbr.ok()) return mbr.status();
  uint64_t total = 0;
  SEGDB_RETURN_IF_ERROR(CheckSubtree(root_, mbr.value(), &total));
  if (total != size_) return Status::Corruption("size_ mismatch");
  return Status::OK();
}

}  // namespace segdb::baseline
