// Baseline: the classical external interval tree (Figure 1, left) used
// for VS queries the only way it can be — stab the vertical line through
// x0, then filter the y-range client-side. I/O is proportional to the
// stabbing output, which dominates the VS output on long-segment
// workloads; experiment E8 quantifies the gap against the paper's
// structures.
#ifndef SEGDB_BASELINE_INTERVAL_STAB_INDEX_H_
#define SEGDB_BASELINE_INTERVAL_STAB_INDEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/segment_index.h"
#include "io/buffer_pool.h"
#include "itree/interval_tree.h"
#include "util/check.h"

namespace segdb::baseline {

class IntervalStabIndex final : public core::SegmentIndex {
 public:
  explicit IntervalStabIndex(io::BufferPool* pool,
                             itree::IntervalTreeOptions options = {})
      : tree_(pool, options) {}

  Status BulkLoad(std::span<const geom::Segment> segments) override {
    SEGDB_IO_BOUND("scan");
    return tree_.BulkLoad(segments);
  }
  Status Insert(const geom::Segment& segment) override {
    SEGDB_IO_BOUND("scan");  // amortized O(log_B n); rebuilds scan
    return tree_.Insert(segment);
  }
  Status Erase(const geom::Segment& segment) override {
    SEGDB_IO_BOUND("log", "t/B");
    return tree_.Erase(segment);
  }
  Status Query(const core::VerticalSegmentQuery& query,
               std::vector<geom::Segment>* out) const override;
  uint64_t size() const override { return tree_.size(); }
  uint64_t page_count() const override { return tree_.page_count(); }
  std::string name() const override { return "interval-tree+filter"; }
  Status CheckInvariants() const override { return tree_.CheckInvariants(); }

  const itree::IntervalTree& tree() const { return tree_; }

 private:
  itree::IntervalTree tree_;
};

}  // namespace segdb::baseline

#endif  // SEGDB_BASELINE_INTERVAL_STAB_INDEX_H_
