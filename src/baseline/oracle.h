// Reference implementations used by tests and experiments:
//  * OracleIndex — in-memory brute force, the ground truth every other
//    SegmentIndex is differentially tested against (no I/O accounted).
//  * StabFilterIndex — answers a VS query by delegating a full stabbing
//    query (vertical *line*) to an inner index and filtering the y-range
//    client-side. This is what "use a stabbing structure" (Figure 1 left)
//    costs on VS workloads: I/O proportional to the stabbing output, not
//    the VS output.
#ifndef SEGDB_BASELINE_ORACLE_H_
#define SEGDB_BASELINE_ORACLE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/segment_index.h"
#include "util/check.h"

namespace segdb::baseline {

class OracleIndex final : public core::SegmentIndex {
 public:
  OracleIndex() = default;

  Status BulkLoad(std::span<const geom::Segment> segments) override;
  Status Insert(const geom::Segment& segment) override;
  Status Erase(const geom::Segment& segment) override;
  Status Query(const core::VerticalSegmentQuery& query,
               std::vector<geom::Segment>* out) const override;
  uint64_t size() const override { return segments_.size(); }
  uint64_t page_count() const override { return 0; }
  std::string name() const override { return "oracle"; }

 private:
  std::vector<geom::Segment> segments_;
};

class StabFilterIndex final : public core::SegmentIndex {
 public:
  // Wraps (and owns) the index used to answer the stabbing query.
  explicit StabFilterIndex(std::unique_ptr<core::SegmentIndex> inner)
      : inner_(std::move(inner)) {}

  Status BulkLoad(std::span<const geom::Segment> segments) override {
    SEGDB_IO_BOUND("scan");
    return inner_->BulkLoad(segments);
  }
  Status Insert(const geom::Segment& segment) override {
    SEGDB_IO_BOUND("scan");  // cost of the wrapped index's insert
    return inner_->Insert(segment);
  }
  Status Query(const core::VerticalSegmentQuery& query,
               std::vector<geom::Segment>* out) const override;
  uint64_t size() const override { return inner_->size(); }
  uint64_t page_count() const override { return inner_->page_count(); }
  std::string name() const override {
    return "stab-filter(" + inner_->name() + ")";
  }
  Status CheckInvariants() const override { return inner_->CheckInvariants(); }

 private:
  std::unique_ptr<core::SegmentIndex> inner_;
};

}  // namespace segdb::baseline

#endif  // SEGDB_BASELINE_ORACLE_H_
