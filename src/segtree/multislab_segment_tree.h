// The "G structure" of Section 4.2/4.3: a segment tree over slab
// boundaries whose nodes carry multislab lists of long fragments, with
// optional fractional-cascading bridges between parent and child lists.
//
// Context (paper, Section 4): an internal node of the first-level interval
// tree partitions its x-range into b slabs by boundaries s_0..s_{b-1}. A
// segment assigned to that node that crosses >= 2 boundaries has a *long
// part* spanning complete slabs. G is a balanced binary tree whose leaves
// are the inner slabs; a long fragment is stored at its O(log2 b)
// canonical allocation nodes. Each node keeps its fragments as an ordered
// *multislab list* in an external B+-tree; all fragments of a node span
// the node's slab interval, so their vertical order is the same at every
// abscissa inside it and a VS query (x0, [ylo, yhi]) reports a contiguous
// run of each list on the root-to-leaf(x0) path.
//
// Without cascading, every node on the path pays a B+-tree descent:
// O(log_B n) each (Lemma 4). With cascading (Section 4.3), every
// (d+1)-th element of the merged parent/child lists becomes a *bridge*:
// its fragment is copied into the other list as a non-reported "augmented
// bridge fragment", and every stored record carries the landing position
// (leaf page + slot) of the nearest bridge at or before it. A query then
// searches only the root list and follows bridges down, O(1) amortized
// pages per level (Theorem 2).
//
// Deviations from the paper, documented in DESIGN.md:
//  * Copied bridge fragments are not "cut" at slab boundaries (cutting
//    creates non-integer coordinates); a sampled fragment that would not
//    span the destination list's reference boundary is simply skipped as
//    a bridge. Gaps stay small in practice and navigation remains correct
//    because the landing is followed by an ordered scan.
//  * Insertions in cascaded mode go to a side "delta" list that queries
//    scan wholesale; the owner rebuilds G when the delta exceeds a
//    fraction of the structure (amortized-rebuild semi-dynamization).
//    Non-cascaded mode inserts directly into the multislab B+-trees.
#ifndef SEGDB_SEGTREE_MULTISLAB_SEGMENT_TREE_H_
#define SEGDB_SEGTREE_MULTISLAB_SEGMENT_TREE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "btree/bplus_tree.h"
#include "geom/predicates.h"
#include "geom/segment.h"
#include "io/buffer_pool.h"
#include "io/columnar_page_view.h"
#include "util/status.h"

namespace segdb::segtree {

// One stored fragment: the original segment plus cascading metadata.
struct GFragment {
  geom::Segment seg;
  // Landing position of the nearest bridge at or before this record, per
  // side (kInvalidPageId = no bridge / cascading disabled).
  io::PageId land_left = io::kInvalidPageId;
  io::PageId land_right = io::kInvalidPageId;
  uint16_t slot_left = 0;
  uint16_t slot_right = 0;
  uint8_t flags = 0;  // bit 0: augmented copy (never reported)
  uint8_t pad_[3] = {0, 0, 0};

  static constexpr uint8_t kAugmented = 1;
  static constexpr uint8_t kTombstone = 2;  // delta-buffer deletion marker
  bool augmented() const { return (flags & kAugmented) != 0; }
  bool tombstone() const { return (flags & kTombstone) != 0; }
};
static_assert(sizeof(GFragment) == 56);
static_assert(std::is_trivially_copyable_v<GFragment>);

}  // namespace segdb::segtree

namespace segdb::io {

// Columnar leaf codec for GFragment (declared next to the struct so every
// translation unit instantiating BPlusTree<GFragment, ...> sees it — ODR).
// The geometry goes into the shared (compressed) segment strips; the
// cascading metadata is random-accessed per record (bridge landings), so it
// stays row-major in a 16-byte trailer array after the strip region. The
// trailer starts at RegionBytes(capacity) — the compressed strip footprint —
// so leaf capacity now beats row-major's bytes / 56.
template <>
struct PageRecordLayout<segtree::GFragment> {
  static constexpr bool kColumnar = true;
  static constexpr uint32_t kMetaBytes = 16;
  static_assert(sizeof(segtree::GFragment) ==
                ConstColumnarPageView::kBytesPerRecord + kMetaBytes);
  static_assert(sizeof(PageId) == 4);

  static uint32_t RegionBytes(uint32_t capacity) {
    return static_cast<uint32_t>(ColumnarRegionBytes(capacity)) +
           capacity * kMetaBytes;
  }

  // Largest capacity whose strip region plus metadata trailer fits.
  static uint32_t Capacity(uint32_t region_bytes) {
    uint32_t c = ColumnarRegionCapacity(region_bytes);
    while (c > 0 && RegionBytes(c) > region_bytes) --c;
    return c;
  }

  static uint32_t MetaOff(uint32_t base, uint32_t capacity, uint32_t i) {
    return base + static_cast<uint32_t>(ColumnarRegionBytes(capacity)) +
           i * kMetaBytes;
  }

  static segtree::GFragment Read(const Page& page, uint32_t base,
                                 uint32_t capacity, uint32_t i) {
    segtree::GFragment g;
    g.seg = ConstColumnarPageView(page, base, capacity).Get(i);
    const uint32_t m = MetaOff(base, capacity, i);
    g.land_left = page.ReadAt<PageId>(m);
    g.land_right = page.ReadAt<PageId>(m + 4);
    g.slot_left = page.ReadAt<uint16_t>(m + 8);
    g.slot_right = page.ReadAt<uint16_t>(m + 10);
    g.flags = page.ReadAt<uint8_t>(m + 12);
    return g;
  }

  static void Write(Page* page, uint32_t base, uint32_t capacity, uint32_t i,
                    const segtree::GFragment& g) {
    ColumnarPageView(page, base, capacity).Set(i, g.seg);
    const uint32_t m = MetaOff(base, capacity, i);
    page->WriteAt(m, g.land_left);
    page->WriteAt(m + 4, g.land_right);
    page->WriteAt(m + 8, g.slot_left);
    page->WriteAt(m + 10, g.slot_right);
    const uint8_t tail[4] = {g.flags, 0, 0, 0};
    page->WriteArray(m + 12, tail, 4);
  }

  // Range variants share one view across the whole run so a packed strip
  // region is decoded (and re-encoded) once, not once per record.
  static void ReadRange(const Page& page, uint32_t base, uint32_t capacity,
                        uint32_t first, segtree::GFragment* out,
                        uint32_t count) {
    const ConstColumnarPageView view(page, base, capacity);
    for (uint32_t i = 0; i < count; ++i) {
      segtree::GFragment& g = out[i];
      g.seg = view.Get(first + i);
      const uint32_t m = MetaOff(base, capacity, first + i);
      g.land_left = page.ReadAt<PageId>(m);
      g.land_right = page.ReadAt<PageId>(m + 4);
      g.slot_left = page.ReadAt<uint16_t>(m + 8);
      g.slot_right = page.ReadAt<uint16_t>(m + 10);
      g.flags = page.ReadAt<uint8_t>(m + 12);
    }
  }

  static void WriteRange(Page* page, uint32_t base, uint32_t capacity,
                         uint32_t first, const segtree::GFragment* src,
                         uint32_t count) {
    ColumnarPageView view(page, base, capacity);
    for (uint32_t i = 0; i < count; ++i) {
      const segtree::GFragment& g = src[i];
      view.Set(first + i, g.seg);
      const uint32_t m = MetaOff(base, capacity, first + i);
      page->WriteAt(m, g.land_left);
      page->WriteAt(m + 4, g.land_right);
      page->WriteAt(m + 8, g.slot_left);
      page->WriteAt(m + 10, g.slot_right);
      const uint8_t tail[4] = {g.flags, 0, 0, 0};
      page->WriteArray(m + 12, tail, 4);
    }
  }
};

}  // namespace segdb::io

namespace segdb::segtree {

// Multislab-list order: vertical order at the node's reference boundary.
struct GFragmentCompare {
  int64_t cx = 0;
  int operator()(const GFragment& a, const GFragment& b) const {
    const int c = geom::CompareCrossingOrder(a.seg, b.seg, cx);
    if (c != 0) return c;
    // An original and its augmented copy tie geometrically; order the
    // original first so reports see it before any copy.
    return static_cast<int>(a.flags) - static_cast<int>(b.flags);
  }
};

// Order for the delta insert buffer (content-independent).
struct GFragmentIdCompare {
  int operator()(const GFragment& a, const GFragment& b) const {
    return a.seg.id < b.seg.id ? -1 : (a.seg.id > b.seg.id ? 1 : 0);
  }
};

struct MultislabOptions {
  bool fractional_cascading = true;
  // The paper's d-property constant (>= 2): one bridge per d+1 merged
  // elements.
  uint32_t bridge_d = 2;
};

class MultislabSegmentTree {
 public:
  // `boundaries`: sorted, distinct x-coordinates of the slab boundaries
  // (the dashed lines s_i); at least 2.
  MultislabSegmentTree(io::BufferPool* pool, std::vector<int64_t> boundaries,
                       MultislabOptions options = {});
  ~MultislabSegmentTree();

  MultislabSegmentTree(const MultislabSegmentTree&) = delete;
  MultislabSegmentTree& operator=(const MultislabSegmentTree&) = delete;

  uint64_t size() const { return size_; }
  uint64_t delta_size() const { return delta_ ? delta_->size() : 0; }
  // Disk pages across every multislab list (space experiments).
  uint64_t page_count() const;

  // Replaces the contents. Every segment must cross at least two
  // boundaries (callers route segments crossing fewer to the short-
  // fragment structures) and must not properly cross any other stored
  // segment.
  Status Build(std::span<const geom::Segment> segments);

  // Semi-dynamic insert. Cascaded mode buffers into the delta list; call
  // NeedsRebuild()/Rebuild() to re-pack (the owning index amortizes this).
  Status Insert(const geom::Segment& segment);

  // Deletion. Non-cascaded mode removes the fragment from its allocation
  // lists; cascaded mode appends a tombstone to the delta (queries filter
  // it, the next rebuild drops it). The segment must currently be stored;
  // non-cascaded mode reports NotFound otherwise.
  Status Erase(const geom::Segment& segment);

  bool NeedsRebuild() const;
  Status Rebuild();

  // Appends every stored segment s that intersects the vertical query
  // segment x = x0, ylo <= y <= yhi *within s's fully-spanned boundary
  // range* — i.e. with s_first(s) <= x0 <= s_last(s), where s_first/s_last
  // are the extreme boundaries s crosses. (The ends of s beyond those
  // boundaries are the paper's short fragments, owned by the L_i/R_i
  // structures; segments are stored whole here rather than cut so that
  // coordinates stay integral.) x0 may equal a boundary.
  Status Query(int64_t x0, int64_t ylo, int64_t yhi,
               std::vector<geom::Segment>* out) const;

  Status Clear();

  // Verification helpers.
  Status CollectAll(std::vector<geom::Segment>* out) const;
  Status CheckInvariants() const;

 private:
  using FragTree = btree::BPlusTree<GFragment, GFragmentCompare>;
  using Position = FragTree::Position;

  struct GNode {
    uint32_t slab_lo = 0;  // inclusive inner-slab interval [slab_lo,
    uint32_t slab_hi = 0;  //                                 slab_hi]
    int32_t left = -1;     // directory indices, -1 = leaf
    int32_t right = -1;
    int64_t cx = 0;  // list-order reference boundary (split line / leaf left)
    std::unique_ptr<FragTree> list;
    Position head;  // first record of the list (bridge fallback landing)
  };

  // Builds the directory for inner slabs [lo, hi]; returns its index.
  int32_t BuildDirectory(uint32_t lo, uint32_t hi);

  // Slab of x0: 0 = left of s_0, i in [1, b-1] = between s_{i-1} and s_i,
  // b = right of the last boundary. *on_boundary set when x0 == s_i (then
  // the returned slab is i, and slab i+1 is also relevant).
  uint32_t LocateSlab(int64_t x0, bool* on_boundary) const;

  // Allocation nodes of the inner-slab range [lo, hi].
  void Allocate(int32_t node, uint32_t lo, uint32_t hi,
                std::vector<int32_t>* out) const;

  // Root-to-leaf directory path for inner slab k.
  std::vector<int32_t> PathToSlab(uint32_t k) const;

  // Reports the contiguous run of `node`'s list intersecting the query,
  // given a landing position (or a fresh search when land.found == false).
  // Sets *next_land to the landing for the child on `descend_left` side.
  Status ScanNodeList(const GNode& node, int64_t x0, int64_t ylo, int64_t yhi,
                      Position land, bool has_next, bool next_left,
                      Position* next_land,
                      std::vector<geom::Segment>* out) const;

  Status BuildLists(
      std::vector<std::vector<geom::Segment>> per_node_originals);

  io::BufferPool* pool_;
  std::vector<int64_t> boundaries_;
  MultislabOptions options_;
  std::vector<GNode> nodes_;
  int32_t root_ = -1;
  uint64_t size_ = 0;
  std::unique_ptr<btree::BPlusTree<GFragment, GFragmentIdCompare>>
      delta_;  // cascaded-mode insert buffer
};

}  // namespace segdb::segtree

#endif  // SEGDB_SEGTREE_MULTISLAB_SEGMENT_TREE_H_
