#include "segtree/multislab_segment_tree.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "util/math.h"
#include "util/check.h"

namespace segdb::segtree {

namespace {

using geom::Segment;

constexpr uint64_t kNoUid = ~uint64_t{0};

// Extreme boundaries a segment crosses: indices into `boundaries` of the
// first and last s_i with x1 <= s_i <= x2. Returns false when the segment
// crosses fewer than two boundaries (then it has no long part).
bool CrossedRange(const std::vector<int64_t>& boundaries, const Segment& s,
                  uint32_t* first, uint32_t* last) {
  auto lo = std::lower_bound(boundaries.begin(), boundaries.end(), s.x1);
  auto hi = std::upper_bound(boundaries.begin(), boundaries.end(), s.x2);
  if (lo >= hi) return false;
  *first = static_cast<uint32_t>(lo - boundaries.begin());
  *last = static_cast<uint32_t>(hi - boundaries.begin()) - 1;
  return *last > *first;
}

}  // namespace

MultislabSegmentTree::MultislabSegmentTree(io::BufferPool* pool,
                                           std::vector<int64_t> boundaries,
                                           MultislabOptions options)
    : pool_(pool), boundaries_(std::move(boundaries)), options_(options) {
  SEGDB_DCHECK(boundaries_.size() >= 2);
  SEGDB_DCHECK(std::is_sorted(boundaries_.begin(), boundaries_.end()));
  SEGDB_DCHECK(std::adjacent_find(boundaries_.begin(), boundaries_.end()) ==
         boundaries_.end());
  SEGDB_DCHECK(options_.bridge_d >= 1);
  // Inner slabs 1..b-1 (slab t lies between s_{t-1} and s_t).
  root_ = BuildDirectory(1, static_cast<uint32_t>(boundaries_.size()) - 1);
  if (options_.fractional_cascading) {
    delta_ = std::make_unique<
        btree::BPlusTree<GFragment, GFragmentIdCompare>>(
        pool_, GFragmentIdCompare{});
  }
}

MultislabSegmentTree::~MultislabSegmentTree() { Clear().IgnoreError(); }

int32_t MultislabSegmentTree::BuildDirectory(uint32_t lo, uint32_t hi) {
  GNode node;
  node.slab_lo = lo;
  node.slab_hi = hi;
  if (lo == hi) {
    node.cx = boundaries_[lo - 1];  // left bound of the single slab
  } else {
    const uint32_t mid = (lo + hi) / 2;
    node.cx = boundaries_[mid];  // split boundary between mid and mid+1
    node.left = BuildDirectory(lo, mid);
    node.right = BuildDirectory(mid + 1, hi);
  }
  node.list = std::make_unique<FragTree>(pool_, GFragmentCompare{node.cx});
  nodes_.push_back(std::move(node));
  return static_cast<int32_t>(nodes_.size()) - 1;
}

uint64_t MultislabSegmentTree::page_count() const {
  uint64_t total = 0;
  for (const GNode& n : nodes_) total += n.list->page_count();
  if (delta_) total += delta_->page_count();
  return total;
}

Status MultislabSegmentTree::Clear() {
  for (GNode& n : nodes_) SEGDB_RETURN_IF_ERROR(n.list->Clear());
  if (delta_) SEGDB_RETURN_IF_ERROR(delta_->Clear());
  size_ = 0;
  return Status::OK();
}

uint32_t MultislabSegmentTree::LocateSlab(int64_t x0,
                                          bool* on_boundary) const {
  *on_boundary = false;
  auto it = std::lower_bound(boundaries_.begin(), boundaries_.end(), x0);
  if (it != boundaries_.end() && *it == x0) {
    *on_boundary = true;
    return static_cast<uint32_t>(it - boundaries_.begin());
  }
  return static_cast<uint32_t>(it - boundaries_.begin());
}

void MultislabSegmentTree::Allocate(int32_t node, uint32_t lo, uint32_t hi,
                                    std::vector<int32_t>* out) const {
  const GNode& n = nodes_[node];
  if (lo <= n.slab_lo && n.slab_hi <= hi) {
    out->push_back(node);
    return;
  }
  if (n.left < 0) return;
  const uint32_t mid = (n.slab_lo + n.slab_hi) / 2;
  if (lo <= mid) Allocate(n.left, lo, hi, out);
  if (hi > mid) Allocate(n.right, lo, hi, out);
}

std::vector<int32_t> MultislabSegmentTree::PathToSlab(uint32_t k) const {
  std::vector<int32_t> path;
  int32_t cur = root_;
  while (cur >= 0) {
    path.push_back(cur);
    const GNode& n = nodes_[cur];
    if (n.left < 0) break;
    const uint32_t mid = (n.slab_lo + n.slab_hi) / 2;
    cur = (k <= mid) ? n.left : n.right;
  }
  return path;
}

Status MultislabSegmentTree::Build(std::span<const Segment> segments) {
  std::vector<std::vector<Segment>> per_node(nodes_.size());
  for (const Segment& s : segments) {
    uint32_t first, last;
    if (!CrossedRange(boundaries_, s, &first, &last)) {
      return Status::InvalidArgument(
          "segment " + std::to_string(s.id) +
          " crosses fewer than two boundaries (no long part)");
    }
    std::vector<int32_t> alloc;
    Allocate(root_, first + 1, last, &alloc);
    for (int32_t nidx : alloc) per_node[nidx].push_back(s);
  }
  // BuildLists constructs every new list aside and commits only on full
  // success, so a failed (re)build leaves the previous contents intact.
  SEGDB_RETURN_IF_ERROR(BuildLists(std::move(per_node)));
  if (delta_) SEGDB_RETURN_IF_ERROR(delta_->Clear());
  size_ = segments.size();
  return Status::OK();
}

Status MultislabSegmentTree::BuildLists(
    std::vector<std::vector<Segment>> per_node) {
  // Build-aside for fault atomicity: every replacement list is loaded into
  // a fresh tree first and swapped in only after all of them succeeded. An
  // early return drops the fresh trees (their destructors free the pages
  // they claimed) with the live lists untouched.
  std::vector<std::unique_ptr<FragTree>> fresh(nodes_.size());
  std::vector<Position> heads(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    fresh[i] =
        std::make_unique<FragTree>(pool_, GFragmentCompare{nodes_[i].cx});
  }
  const auto commit = [&]() {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      nodes_[i].list = std::move(fresh[i]);  // old tree frees its pages
      nodes_[i].head = heads[i];
    }
    return Status::OK();
  };

  if (!options_.fractional_cascading) {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      std::vector<GFragment> frags;
      frags.reserve(per_node[i].size());
      for (const Segment& s : per_node[i]) frags.push_back(GFragment{.seg = s});
      GFragmentCompare cmp{nodes_[i].cx};
      std::sort(frags.begin(), frags.end(),
                [&](const GFragment& a, const GFragment& b) {
                  return cmp(a, b) < 0;
                });
      SEGDB_RETURN_IF_ERROR(fresh[i]->BulkLoad(frags));
      auto head = fresh[i]->HeadPosition();
      if (!head.ok()) return head.status();
      heads[i] = head.value();
    }
    return commit();
  }

  // --- Fractional cascading (Section 4.3) --------------------------------
  struct Entry {
    Segment seg;
    bool augmented = false;
    uint64_t uid = kNoUid;
    uint64_t link_left = kNoUid;   // uid in the left son's list
    uint64_t link_right = kNoUid;  // uid in the right son's list
  };
  uint64_t next_uid = 0;
  std::vector<std::vector<Entry>> entries(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    auto cmp = GFragmentCompare{nodes_[i].cx};
    std::sort(per_node[i].begin(), per_node[i].end(),
              [&](const Segment& a, const Segment& b) {
                return geom::CompareCrossingOrder(a, b, nodes_[i].cx) < 0;
              });
    entries[i].reserve(per_node[i].size());
    (void)cmp;
    for (const Segment& s : per_node[i]) {
      entries[i].push_back(Entry{s, false, next_uid++, kNoUid, kNoUid});
    }
  }

  // Top-down pairing: sample every (d+1)-th element of each merged
  // parent/child list as a bridge and copy it (augmented) into the other
  // list. All content of both lists crosses the parent's split boundary,
  // which is the merge coordinate.
  std::vector<int32_t> bfs;
  bfs.push_back(root_);
  for (size_t qi = 0; qi < bfs.size(); ++qi) {
    const int32_t ni = bfs[qi];
    if (nodes_[ni].left >= 0) {
      bfs.push_back(nodes_[ni].left);
      bfs.push_back(nodes_[ni].right);
    }
  }
  const uint32_t period = options_.bridge_d + 1;
  for (int32_t ni : bfs) {
    GNode& nu = nodes_[ni];
    if (nu.left < 0) continue;
    for (int side = 0; side < 2; ++side) {
      const int32_t ci = side == 0 ? nu.left : nu.right;
      GNode& child = nodes_[ci];
      std::vector<Entry>& pl = entries[ni];
      std::vector<Entry>& cl = entries[ci];
      // Two-pointer merge by order at the parent's split boundary.
      std::vector<std::pair<bool, size_t>> merged;  // (from_parent, index)
      merged.reserve(pl.size() + cl.size());
      size_t a = 0, b = 0;
      while (a < pl.size() || b < cl.size()) {
        bool take_parent;
        if (a == pl.size()) {
          take_parent = false;
        } else if (b == cl.size()) {
          take_parent = true;
        } else {
          take_parent =
              geom::CompareCrossingOrder(pl[a].seg, cl[b].seg, nu.cx) <= 0;
        }
        merged.emplace_back(take_parent, take_parent ? a++ : b++);
      }
      // A copy may enter a destination list only when it spans the
      // destination node's whole x-interval — every query abscissa that
      // can reach the node lies inside that interval, so all stored
      // records stay exactly evaluable there. (The paper "cuts" copies at
      // slab boundaries instead; uncut integer copies that fall short are
      // skipped, which can only widen bridge gaps, never break answers.)
      auto spans_node = [&](const GNode& n, const Segment& s) {
        return s.x1 <= boundaries_[n.slab_lo - 1] &&
               boundaries_[n.slab_hi] <= s.x2;
      };
      std::vector<Entry> parent_pending, child_pending;
      for (size_t m = period - 1; m < merged.size(); m += period) {
        const auto [from_parent, idx] = merged[m];
        if (from_parent) {
          const Segment& s = pl[idx].seg;
          if (!spans_node(child, s)) continue;
          Entry copy{s, true, next_uid++, kNoUid, kNoUid};
          if (side == 0) {
            pl[idx].link_left = copy.uid;
          } else {
            pl[idx].link_right = copy.uid;
          }
          child_pending.push_back(copy);
        } else {
          // Copy the child fragment up as an augmented bridge in the
          // parent pointing at the child original. Child fragments rarely
          // span the whole parent; those that do not are skipped.
          const Segment& s = cl[idx].seg;
          if (!spans_node(nu, s)) continue;
          Entry copy{s, true, next_uid++, kNoUid, kNoUid};
          if (side == 0) {
            copy.link_left = cl[idx].uid;
          } else {
            copy.link_right = cl[idx].uid;
          }
          parent_pending.push_back(copy);
        }
      }
      auto merge_in = [](std::vector<Entry>& dst, std::vector<Entry> add,
                         int64_t cx) {
        if (add.empty()) return;
        dst.insert(dst.end(), add.begin(), add.end());
        std::stable_sort(dst.begin(), dst.end(),
                         [cx](const Entry& x, const Entry& y) {
                           return geom::CompareCrossingOrder(x.seg, y.seg,
                                                             cx) < 0;
                         });
      };
      merge_in(pl, std::move(parent_pending), nu.cx);
      merge_in(cl, std::move(child_pending), child.cx);
    }
  }

  // Bottom-up materialization: children first so parents can embed the
  // landing positions of their bridges (heads[] carries the fresh trees'
  // head positions — the live nodes_ heads still describe the old lists).
  std::unordered_map<uint64_t, Position> position_of;
  for (auto it = bfs.rbegin(); it != bfs.rend(); ++it) {
    const int32_t ni = *it;
    GNode& node = nodes_[ni];
    std::vector<Entry>& list = entries[ni];
    GFragmentCompare cmp{node.cx};
    std::stable_sort(list.begin(), list.end(),
                     [&](const Entry& x, const Entry& y) {
                       const int c =
                           geom::CompareCrossingOrder(x.seg, y.seg, node.cx);
                       if (c != 0) return c < 0;
                       return x.augmented < y.augmented;
                     });
    // Propagate nearest-bridge-at-or-before landings into every record.
    std::vector<GFragment> frags;
    frags.reserve(list.size());
    Position last_left = node.left >= 0 ? heads[node.left] : Position{};
    Position last_right = node.right >= 0 ? heads[node.right] : Position{};
    for (const Entry& e : list) {
      if (e.link_left != kNoUid) {
        auto pit = position_of.find(e.link_left);
        if (pit != position_of.end()) last_left = pit->second;
      }
      if (e.link_right != kNoUid) {
        auto pit = position_of.find(e.link_right);
        if (pit != position_of.end()) last_right = pit->second;
      }
      GFragment f;
      f.seg = e.seg;
      if (e.augmented) f.flags |= GFragment::kAugmented;
      if (last_left.found) {
        f.land_left = last_left.leaf;
        f.slot_left = static_cast<uint16_t>(last_left.slot);
      }
      if (last_right.found) {
        f.land_right = last_right.leaf;
        f.slot_right = static_cast<uint16_t>(last_right.slot);
      }
      frags.push_back(f);
    }
    std::vector<Position> positions;
    SEGDB_RETURN_IF_ERROR(fresh[ni]->BulkLoadWithPositions(frags, &positions));
    for (size_t k = 0; k < list.size(); ++k) {
      position_of[list[k].uid] = positions[k];
    }
    auto head = fresh[ni]->HeadPosition();
    if (!head.ok()) return head.status();
    heads[ni] = head.value();
    (void)cmp;
  }
  // Heads may have been recorded into parents before a child was built;
  // rebuild-order above is bottom-up so child heads were already final.
  return commit();
}

Status MultislabSegmentTree::Insert(const Segment& segment) {
  SEGDB_IO_BOUND("scan");  // amortized O(log_B n); lists may repack
  uint32_t first, last;
  if (!CrossedRange(boundaries_, segment, &first, &last)) {
    return Status::InvalidArgument(
        "segment " + std::to_string(segment.id) +
        " crosses fewer than two boundaries (no long part)");
  }
  if (options_.fractional_cascading) {
    // Re-inserting a segment whose tombstone is still buffered simply
    // cancels the tombstone (the packed lists still hold the original).
    GFragment tomb{.seg = segment};
    tomb.flags |= GFragment::kTombstone;
    if (!delta_->Erase(tomb).ok()) {
      SEGDB_RETURN_IF_ERROR(delta_->Insert(GFragment{.seg = segment}));
    }
    ++size_;
    return Status::OK();
  }
  std::vector<int32_t> alloc;
  Allocate(root_, first + 1, last, &alloc);
  for (size_t i = 0; i < alloc.size(); ++i) {
    const Status inserted =
        nodes_[alloc[i]].list->Insert(GFragment{.seg = segment});
    if (!inserted.ok()) {
      // Un-insert from the lists already updated. The rollback is pure
      // removal — no page allocation — so it cannot trip over another
      // injected allocation fault.
      for (size_t j = 0; j < i; ++j) {
        nodes_[alloc[j]].list->Erase(GFragment{.seg = segment}).IgnoreError();
      }
      return inserted;
    }
  }
  ++size_;
  return Status::OK();
}

Status MultislabSegmentTree::Erase(const Segment& segment) {
  SEGDB_IO_BOUND("scan");  // amortized O(log_B n); lists may repack
  uint32_t first, last;
  if (!CrossedRange(boundaries_, segment, &first, &last)) {
    return Status::NotFound("segment has no long part here");
  }
  std::vector<int32_t> alloc;
  Allocate(root_, first + 1, last, &alloc);
  if (options_.fractional_cascading) {
    // Deleting a still-buffered insert removes it outright; otherwise a
    // tombstone masks the packed record until the next rebuild — but only
    // if the record actually exists and is not already tombstoned.
    if (delta_->Erase(GFragment{.seg = segment}).ok()) {
      --size_;
      return Status::OK();
    }
    GFragment tomb{.seg = segment};
    tomb.flags |= GFragment::kTombstone;
    bool tombstoned = false;
    SEGDB_RETURN_IF_ERROR(delta_->ScanFrom(tomb, [&](const GFragment& f) {
      if (f.seg.id != segment.id) return false;
      if (f.tombstone() && f.seg == segment) tombstoned = true;
      return !tombstoned;
    }));
    if (tombstoned) return Status::NotFound("segment already deleted");
    // Probe one allocation node's packed list for the live original.
    bool present = false;
    if (!alloc.empty()) {
      const GNode& n0 = nodes_[alloc[0]];
      const GFragmentCompare cmp{n0.cx};
      SEGDB_RETURN_IF_ERROR(
          n0.list->ScanFrom(GFragment{.seg = segment},
                            [&](const GFragment& f) {
                              if (cmp(f, GFragment{.seg = segment}) != 0) {
                                return false;
                              }
                              if (!f.augmented() && f.seg == segment) {
                                present = true;
                              }
                              return !present;
                            }));
    }
    if (!present) return Status::NotFound("segment not stored");
    SEGDB_RETURN_IF_ERROR(delta_->Insert(tomb));
    --size_;
    return Status::OK();
  }
  for (size_t i = 0; i < alloc.size(); ++i) {
    const Status s =
        nodes_[alloc[i]].list->Erase(GFragment{.seg = segment});
    if (!s.ok()) {
      // The first allocation node decides existence; later ones must
      // agree or the structure is corrupt.
      return i == 0 ? s : Status::Corruption("partial fragment allocation");
    }
  }
  --size_;
  return Status::OK();
}

bool MultislabSegmentTree::NeedsRebuild() const {
  if (!delta_) return false;
  const uint64_t threshold = std::max<uint64_t>(32, size_ / 8);
  return delta_->size() > threshold;
}

Status MultislabSegmentTree::Rebuild() {
  std::vector<Segment> all;
  SEGDB_RETURN_IF_ERROR(CollectAll(&all));
  return Build(all);
}

Status MultislabSegmentTree::CollectAll(std::vector<Segment>* out) const {
  std::unordered_set<uint64_t> tombstoned;
  if (delta_) {
    SEGDB_RETURN_IF_ERROR(delta_->ScanAll([&](const GFragment& f) {
      if (f.tombstone()) tombstoned.insert(f.seg.id);
      return true;
    }));
  }
  std::unordered_set<uint64_t> seen;
  for (const GNode& n : nodes_) {
    SEGDB_RETURN_IF_ERROR(n.list->ScanAll([&](const GFragment& f) {
      if (!f.augmented() && !tombstoned.contains(f.seg.id) &&
          seen.insert(f.seg.id).second) {
        out->push_back(f.seg);
      }
      return true;
    }));
  }
  if (delta_) {
    SEGDB_RETURN_IF_ERROR(delta_->ScanAll([&](const GFragment& f) {
      if (!f.tombstone() && !tombstoned.contains(f.seg.id) &&
          seen.insert(f.seg.id).second) {
        out->push_back(f.seg);
      }
      return true;
    }));
  }
  return Status::OK();
}

namespace {

// A leaf-resident cursor over a FragTree's ordered records.
class Cursor {
 public:
  using FragTree = btree::BPlusTree<GFragment, GFragmentCompare>;
  using Position = FragTree::Position;

  Cursor(const FragTree* tree, Position pos) : tree_(tree), pos_(pos) {}

  bool valid() const { return pos_.found && loaded_ok_; }

  Status Load() {
    if (!pos_.found) {
      loaded_ok_ = false;
      return Status::OK();
    }
    auto view = tree_->ReadLeaf(pos_.leaf);
    if (!view.ok()) return view.status();
    view_ = std::move(view.value());
    // A stale slot (should not happen on static lists) falls off the end.
    loaded_ok_ = pos_.slot < view_.records.size();
    return Status::OK();
  }

  const GFragment& Get() const { return view_.records[pos_.slot]; }

  // Advances; invalid at end.
  Status Next() {
    if (!loaded_ok_) return Status::OK();
    if (pos_.slot + 1 < view_.records.size()) {
      ++pos_.slot;
      return Status::OK();
    }
    if (view_.next == io::kInvalidPageId) {
      loaded_ok_ = false;
      return Status::OK();
    }
    pos_.leaf = view_.next;
    pos_.slot = 0;
    return Load();
  }

  // Steps back; invalid at the beginning.
  Status Prev() {
    if (!loaded_ok_) return Status::OK();
    if (pos_.slot > 0) {
      --pos_.slot;
      return Status::OK();
    }
    if (view_.prev == io::kInvalidPageId) {
      loaded_ok_ = false;
      return Status::OK();
    }
    pos_.leaf = view_.prev;
    auto view = tree_->ReadLeaf(pos_.leaf);
    if (!view.ok()) return view.status();
    view_ = std::move(view.value());
    if (view_.records.empty()) {
      loaded_ok_ = false;
      return Status::OK();
    }
    pos_.slot = static_cast<uint32_t>(view_.records.size()) - 1;
    return Status::OK();
  }

 private:
  const FragTree* tree_;
  Position pos_;
  FragTree::LeafView view_;
  bool loaded_ok_ = false;
};

}  // namespace

Status MultislabSegmentTree::ScanNodeList(const GNode& node, int64_t x0,
                                          int64_t ylo, int64_t yhi,
                                          Position land, bool has_next,
                                          bool next_left, Position* next_land,
                                          std::vector<Segment>* out) const {
  *next_land = Position{};
  if (node.list->size() == 0) return Status::OK();

  // y-vs-range classification at x0; every stored fragment spans x0's slab.
  auto below = [&](const GFragment& f) {
    return geom::CompareYAtX(f.seg, x0, ylo) < 0;
  };
  auto above = [&](const GFragment& f) {
    return geom::CompareYAtX(f.seg, x0, yhi) > 0;
  };

  GFragment pred{};
  bool have_pred = false;

  Position start = land;
  if (!start.found) {
    // Fresh B+-tree search: first record not below the range.
    SEGDB_RETURN_IF_ERROR(node.list->FindFirstWhere(
        [&](const GFragment& f) { return !below(f); }, &start, &pred,
        &have_pred));
    if (!start.found) {
      // Everything is below the range: no answers here; hand the child the
      // last record's bridge (the deepest position known to be below).
      if (have_pred) {
        *next_land = Position{next_left ? pred.land_left : pred.land_right,
                              next_left ? pred.slot_left : pred.slot_right,
                              (next_left ? pred.land_left : pred.land_right) !=
                                  io::kInvalidPageId};
      }
      return Status::OK();
    }
  }

  Cursor cur(node.list.get(), start);
  SEGDB_RETURN_IF_ERROR(cur.Load());
  if (!cur.valid()) return Status::OK();

  // Phase 1 — normalize the start position.
  // (a) If we landed below the range (bridge landings always do unless the
  //     list head itself is in range), walk forward to the first record
  //     not below, tracking the last below-record for the child landing.
  // (b) Then walk backward while the preceding record might still belong
  //     to the answer: it is not-below, or it ties with its successor at
  //     the node's reference boundary (order within such tie groups is not
  //     y(x0)-monotone, so the binary search can land mid-group).
  while (cur.valid() && below(cur.Get())) {
    pred = cur.Get();
    have_pred = true;
    SEGDB_RETURN_IF_ERROR(cur.Next());
  }
  if (!cur.valid()) {
    if (have_pred) {
      *next_land = Position{next_left ? pred.land_left : pred.land_right,
                            next_left ? pred.slot_left : pred.slot_right,
                            (next_left ? pred.land_left : pred.land_right) !=
                                io::kInvalidPageId};
    }
    return Status::OK();
  }
  for (;;) {  // SEMA-LOOP: record (backward walk over one tie group)
    Cursor back = cur;
    SEGDB_RETURN_IF_ERROR(back.Prev());
    if (!back.valid()) break;
    const GFragment pf = back.Get();
    if (below(pf)) {
      // A below-range record only hides earlier answers inside its own
      // reference-boundary tie group (strictly smaller y(cx) implies
      // y(x0) below the range too). Stop once the group ends.
      Cursor back2 = back;
      SEGDB_RETURN_IF_ERROR(back2.Prev());
      if (!back2.valid()) break;
      if (geom::CompareSegmentsAtX(back2.Get().seg, pf.seg, node.cx) != 0) {
        break;
      }
    }
    cur = back;
  }
  {
    // The record before the scan start is the child-landing anchor.
    Cursor back = cur;
    SEGDB_RETURN_IF_ERROR(back.Prev());
    if (back.valid()) {
      pred = back.Get();
      have_pred = true;
    } else {
      have_pred = false;
    }
  }

  // Phase 2 — forward report with group-aware termination: stop only after
  // a whole reference-boundary tie group lay entirely above the range
  // (later groups are then provably above as well).
  bool group_all_above = true;
  bool have_group = false;
  GFragment group_rep{};
  while (cur.valid()) {
    const GFragment& f = cur.Get();
    const bool new_group =
        !have_group ||
        geom::CompareSegmentsAtX(f.seg, group_rep.seg, node.cx) != 0;
    if (new_group) {
      if (have_group && group_all_above) break;
      group_rep = f;
      have_group = true;
      group_all_above = true;
    }
    if (below(f)) {
      pred = f;
      have_pred = true;
      group_all_above = false;
    } else if (!above(f)) {
      group_all_above = false;
      if (!f.augmented()) out->push_back(f.seg);
    }
    SEGDB_RETURN_IF_ERROR(cur.Next());
  }

  if (has_next && have_pred) {
    const io::PageId lp = next_left ? pred.land_left : pred.land_right;
    const uint16_t ls = next_left ? pred.slot_left : pred.slot_right;
    *next_land = Position{lp, ls, lp != io::kInvalidPageId};
  }
  return Status::OK();
}

Status MultislabSegmentTree::Query(int64_t x0, int64_t ylo, int64_t yhi,
                                   std::vector<Segment>* out) const {
  // O(log_B n + sqrt(n/B) + t/B): one multislab-list probe per crossing
  // slab along the stabbing path (Section 4's long-segment structure).
  SEGDB_IO_BOUND("log", "sqrt", "t/B");
  if (ylo > yhi) return Status::InvalidArgument("ylo > yhi");
  bool on_boundary = false;
  const uint32_t k = LocateSlab(x0, &on_boundary);
  const uint32_t inner_max = static_cast<uint32_t>(boundaries_.size()) - 1;

  std::vector<uint32_t> slabs;
  if (on_boundary) {
    // x0 == s_k: fragments crossing s_k cover slab k or k+1.
    if (k >= 1 && k <= inner_max) slabs.push_back(k);
    if (k + 1 >= 1 && k + 1 <= inner_max) slabs.push_back(k + 1);
  } else if (k >= 1 && k <= inner_max) {
    slabs.push_back(k);
  }

  // Boundary queries may report a fragment from both paths; dedup by id.
  const bool dedup = slabs.size() > 1;
  std::unordered_set<uint64_t> reported;
  std::unordered_set<int32_t> visited;
  std::vector<Segment> hits;

  for (uint32_t slab : slabs) {
    const std::vector<int32_t> path = PathToSlab(slab);
    Position land{};
    for (size_t pi = 0; pi < path.size(); ++pi) {
      const GNode& node = nodes_[path[pi]];
      const bool has_next = pi + 1 < path.size();
      const bool next_left = has_next && path[pi + 1] == node.left;
      Position next_land{};
      if (visited.insert(path[pi]).second || !dedup) {
        std::vector<Segment> local;
        SEGDB_RETURN_IF_ERROR(ScanNodeList(node, x0, ylo, yhi, land, has_next,
                                           next_left, &next_land, &local));
        for (const Segment& s : local) {
          if (!dedup || reported.insert(s.id).second) hits.push_back(s);
        }
      } else {
        // Already reported from the other path; still navigate for the
        // landing.
        std::vector<Segment> scratch;
        SEGDB_RETURN_IF_ERROR(ScanNodeList(node, x0, ylo, yhi, land, has_next,
                                           next_left, &next_land, &scratch));
      }
      land = next_land;
    }
  }

  // Apply the delta buffer: unpublished inserts add, tombstones subtract.
  std::unordered_set<uint64_t> tombstoned;
  std::vector<Segment> delta_hits;
  if (delta_ && delta_->size() > 0) {
    SEGDB_RETURN_IF_ERROR(delta_->ScanAll([&](const GFragment& f) {
      if (f.tombstone()) {
        tombstoned.insert(f.seg.id);
        return true;
      }
      uint32_t first, last;
      if (CrossedRange(boundaries_, f.seg, &first, &last) &&
          boundaries_[first] <= x0 && x0 <= boundaries_[last] &&
          geom::IntersectsVerticalSegment(f.seg, x0, ylo, yhi)) {
        delta_hits.push_back(f.seg);
      }
      return true;
    }));
  }
  for (const Segment& s : hits) {
    if (!tombstoned.contains(s.id)) out->push_back(s);
  }
  for (const Segment& s : delta_hits) {
    if (!tombstoned.contains(s.id)) out->push_back(s);
  }
  return Status::OK();
}

Status MultislabSegmentTree::CheckInvariants() const {
  for (const GNode& n : nodes_) {
    const int64_t span_lo = boundaries_[n.slab_lo - 1];
    const int64_t span_hi = boundaries_[n.slab_hi];
    GFragment prev{};
    bool have_prev = false;
    GFragmentCompare cmp{n.cx};
    Status status = Status::OK();
    SEGDB_RETURN_IF_ERROR(n.list->ScanAll([&](const GFragment& f) {
      // Every record — original or augmented copy — must span the node's
      // whole x-interval so query-time comparisons are always exact.
      if (!(f.seg.x1 <= span_lo && span_hi <= f.seg.x2)) {
        status = Status::Corruption("fragment does not span its node");
        return false;
      }
      if (have_prev && cmp(prev, f) > 0) {
        status = Status::Corruption("multislab list out of order");
        return false;
      }
      prev = f;
      have_prev = true;
      return true;
    }));
    SEGDB_RETURN_IF_ERROR(status);
  }
  return Status::OK();
}

}  // namespace segdb::segtree
