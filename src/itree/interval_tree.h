// External interval tree over segment x-extents — the stabbing structure
// the paper builds on (its reference [3], Arge & Vitter) and the literal
// left-hand side of its Figure 1. Reports every stored segment whose
// x-extent contains a query abscissa ("which segments does this vertical
// LINE cross"); combined with a client-side y-filter it becomes the
// stab-and-filter VS baseline of experiment E8.
//
// Shape (mirroring the paper's own Section 4.1 description of [3]): a
// fan-out-b tree over endpoint quantiles; a segment lives at the highest
// node where its x-extent touches a slab boundary. Within a node:
//   C_i — segments with a point x-extent exactly on boundary s_i;
//   L_i — first touched boundary s_i with x1 < s_i, ordered by x1
//         ascending: for a query in the slab left of s_i the answers are
//         a prefix (every member reaches s_i, hence past the query);
//   R_i — last touched boundary s_i with x2 > s_i, ordered by x2
//         descending: symmetric;
//   M   — multislab lists: segments whose extent spans >= 2 boundaries,
//         allocated on an in-node binary tree over the inner slabs; every
//         list on the root-to-slab path is reported wholesale.
// Stabbing costs O(log_B n (1 + log2 b)) page reads plus the output — the
// same per-node budget Solution B spends — with O(n) blocks for C/L/R and
// O(n log2 B) worst case for M.
//
// Updates use the same discipline as the rest of segdb: routed inserts /
// deletes into the per-boundary B+-trees plus weight-balanced partial
// rebuilding of first-level subtrees.
#ifndef SEGDB_ITREE_INTERVAL_TREE_H_
#define SEGDB_ITREE_INTERVAL_TREE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "btree/bplus_tree.h"
#include "geom/segment.h"
#include "io/buffer_pool.h"
#include "util/status.h"

namespace segdb::itree {

struct IntervalTreeOptions {
  uint32_t fanout = 0;         // boundaries per node; 0 = B/4
  uint32_t leaf_capacity = 0;  // 0 = one page's worth
  double rebuild_factor = 2.0;
};

class IntervalTree {
 public:
  IntervalTree(io::BufferPool* pool, IntervalTreeOptions options = {});
  ~IntervalTree();

  IntervalTree(const IntervalTree&) = delete;
  IntervalTree& operator=(const IntervalTree&) = delete;

  uint64_t size() const { return size_; }
  uint64_t page_count() const;
  uint32_t height() const { return SubtreeHeight(root_); }

  Status BulkLoad(std::span<const geom::Segment> segments);
  Status Insert(const geom::Segment& segment);
  Status Erase(const geom::Segment& segment);

  // Appends every stored segment s with s.x1 <= x0 <= s.x2.
  Status Stab(int64_t x0, std::vector<geom::Segment>* out) const;

  Status CheckInvariants() const;

 private:
  struct ByLoAsc {
    int operator()(const geom::Segment& a, const geom::Segment& b) const {
      if (a.x1 != b.x1) return a.x1 < b.x1 ? -1 : 1;
      if (a.id != b.id) return a.id < b.id ? -1 : 1;
      return 0;
    }
  };
  struct ByHiDesc {
    int operator()(const geom::Segment& a, const geom::Segment& b) const {
      if (a.x2 != b.x2) return a.x2 > b.x2 ? -1 : 1;
      if (a.id != b.id) return a.id < b.id ? -1 : 1;
      return 0;
    }
  };
  struct ById {
    int operator()(const geom::Segment& a, const geom::Segment& b) const {
      if (a.id != b.id) return a.id < b.id ? -1 : 1;
      return 0;
    }
  };
  using LoTree = btree::BPlusTree<geom::Segment, ByLoAsc>;
  using HiTree = btree::BPlusTree<geom::Segment, ByHiDesc>;
  using IdTree = btree::BPlusTree<geom::Segment, ById>;

  struct BoundaryLists {
    std::unique_ptr<IdTree> c;  // point-extent segments on the boundary
    std::unique_ptr<LoTree> l;
    std::unique_ptr<HiTree> r;
  };
  struct MultislabNode {
    uint32_t slab_lo = 0, slab_hi = 0;
    int32_t left = -1, right = -1;
    std::unique_ptr<IdTree> list;
  };
  struct Node {
    bool is_leaf = false;
    std::vector<int64_t> boundaries;
    std::vector<BoundaryLists> per_boundary;
    std::vector<MultislabNode> mtree;  // in-node binary tree, index 0 unused
    int32_t mroot = -1;
    std::vector<int32_t> children;
    uint64_t subtree_size = 0;
    uint64_t inserts_since_rebuild = 0;  // amortization guard
    io::PageId meta_page = io::kInvalidPageId;
    std::vector<io::PageId> leaf_pages;
    std::vector<geom::Segment> leaf_segments;
  };

  uint32_t LeafCapacity() const;
  static bool TouchedRange(const std::vector<int64_t>& boundaries,
                           const geom::Segment& s, uint32_t* first,
                           uint32_t* last);

  int32_t BuildMultislabDirectory(Node* node, uint32_t lo, uint32_t hi);
  void AllocateMultislab(const Node& node, int32_t mnode, uint32_t lo,
                         uint32_t hi, std::vector<int32_t>* out) const;

  // Takes a node slot from the free list (or grows the arena).
  int32_t AllocNode();
  // Fault-atomic: on failure every page and arena slot the partial build
  // claimed is released before the error returns (no-op on the tree).
  Result<int32_t> BuildSubtree(std::vector<geom::Segment> segments);
  Status BuildSubtreeAt(int32_t idx, std::vector<geom::Segment> segments);
  Status FreeSubtree(int32_t idx);
  Status CollectSubtree(int32_t idx, std::vector<geom::Segment>* out) const;
  Status WriteLeafPages(Node* node);
  Status InsertAtNode(Node* node, const geom::Segment& s);
  Status EraseAtNode(Node* node, const geom::Segment& s);
  uint32_t SubtreeHeight(int32_t idx) const;

  io::BufferPool* pool_;
  IntervalTreeOptions options_;
  uint32_t fanout_ = 0;
  std::vector<Node> nodes_;
  std::vector<int32_t> free_nodes_;
  int32_t root_ = -1;
  uint64_t size_ = 0;
};

}  // namespace segdb::itree

#endif  // SEGDB_ITREE_INTERVAL_TREE_H_
