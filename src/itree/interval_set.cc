#include "itree/interval_set.h"

#include <string>

#include "util/check.h"

namespace segdb::itree {

Status IntervalSet::Validate(const Interval& iv) {
  if (iv.lo > iv.hi) {
    return Status::InvalidArgument("interval " + std::to_string(iv.id) +
                                   " has lo > hi");
  }
  return Status::OK();
}

Status IntervalSet::BulkLoad(std::span<const Interval> intervals) {
  SEGDB_IO_BOUND("scan");
  std::vector<pst::PointRecord> points;
  points.reserve(intervals.size());
  for (const Interval& iv : intervals) {
    SEGDB_RETURN_IF_ERROR(Validate(iv));
    points.push_back(Encode(iv));
  }
  return impl_.BulkLoad(points);
}

Status IntervalSet::Insert(const Interval& interval) {
  SEGDB_IO_BOUND("scan");  // amortized O(log_B n); see LinePst::Insert
  SEGDB_RETURN_IF_ERROR(Validate(interval));
  return impl_.Insert(Encode(interval));
}

Status IntervalSet::Erase(const Interval& interval) {
  SEGDB_IO_BOUND("scan");  // amortized O(log_B n); see LinePst::Erase
  SEGDB_RETURN_IF_ERROR(Validate(interval));
  return impl_.Erase(Encode(interval));
}

Status IntervalSet::Stab(int64_t q, std::vector<Interval>* out) const {
  SEGDB_IO_BOUND("log", "t/B");
  return Intersect(q, q, out);
}

Status IntervalSet::Intersect(int64_t a, int64_t b,
                              std::vector<Interval>* out) const {
  SEGDB_IO_BOUND("log", "t/B");
  if (a > b) return Status::InvalidArgument("a > b");
  std::vector<pst::PointRecord> hits;
  // lo <= b and hi >= a.
  SEGDB_RETURN_IF_ERROR(
      impl_.Query3Sided(-(geom::kMaxCoord + 1), b, a, &hits));
  out->reserve(out->size() + hits.size());
  for (const auto& p : hits) out->push_back(Decode(p));
  return Status::OK();
}

}  // namespace segdb::itree
