// External 1-D interval index: stabbing and interval-intersection queries
// over N intervals in O(log_B n + t) I/Os with O(n) blocks — the role the
// paper's reference [3] (Arge–Vitter external interval tree) plays as a
// substrate.
//
// Representation: interval [lo, hi] <-> point (lo, hi). Then
//   stab(q)          = { lo <= q <= hi }  = 3-sided query x <= q, y >= q;
//   intersect([a,b]) = { lo <= b, hi >= a } = 3-sided query x <= b, y >= a,
// both answered by the external priority search tree (pst::PointPst),
// which meets the same optimal bounds. The C structures of both two-level
// indexes use this encoding directly; IntervalSet packages it as a public
// standalone index with typed records.
#ifndef SEGDB_ITREE_INTERVAL_SET_H_
#define SEGDB_ITREE_INTERVAL_SET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "io/buffer_pool.h"
#include "pst/point_pst.h"
#include "util/status.h"

namespace segdb::itree {

struct Interval {
  int64_t lo = 0;
  int64_t hi = 0;  // inclusive; lo <= hi
  uint64_t id = 0;

  friend bool operator==(const Interval&, const Interval&) = default;
};

class IntervalSet {
 public:
  explicit IntervalSet(io::BufferPool* pool, pst::LinePstOptions options = {})
      : impl_(pool, options) {}

  uint64_t size() const { return impl_.size(); }
  uint64_t page_count() const { return impl_.page_count(); }

  Status BulkLoad(std::span<const Interval> intervals);
  Status Insert(const Interval& interval);
  Status Erase(const Interval& interval);

  // Appends every stored interval containing q.
  Status Stab(int64_t q, std::vector<Interval>* out) const;

  // Appends every stored interval intersecting [a, b] (a <= b).
  Status Intersect(int64_t a, int64_t b, std::vector<Interval>* out) const;

  Status Clear() { return impl_.Clear(); }
  Status CheckInvariants() const { return impl_.CheckInvariants(); }

 private:
  static Status Validate(const Interval& iv);
  static pst::PointRecord Encode(const Interval& iv) {
    return pst::PointRecord{iv.lo, iv.hi, iv.id};
  }
  static Interval Decode(const pst::PointRecord& p) {
    return Interval{p.x, p.y, p.id};
  }

  pst::PointPst impl_;
};

}  // namespace segdb::itree

#endif  // SEGDB_ITREE_INTERVAL_SET_H_
