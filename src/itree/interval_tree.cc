#include "itree/interval_tree.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "geom/filter_kernel.h"
#include "io/columnar_page_view.h"
#include "util/check.h"

namespace segdb::itree {

namespace {
using geom::Segment;
constexpr uint32_t kLeafHeader = 8;
}  // namespace

IntervalTree::IntervalTree(io::BufferPool* pool, IntervalTreeOptions options)
    : pool_(pool), options_(options) {
  if (options_.fanout != 0) {
    fanout_ = std::max<uint32_t>(2, options_.fanout);
  } else {
    const uint32_t records =
        pool_->page_size() / static_cast<uint32_t>(sizeof(Segment));
    fanout_ = std::max<uint32_t>(2, records / 4);
  }
}

IntervalTree::~IntervalTree() {
  if (root_ >= 0) FreeSubtree(root_).IgnoreError();
}

uint32_t IntervalTree::LeafCapacity() const {
  if (options_.leaf_capacity != 0) return options_.leaf_capacity;
  return io::ColumnarRegionCapacity(pool_->page_size() - kLeafHeader);
}

bool IntervalTree::TouchedRange(const std::vector<int64_t>& boundaries,
                                const Segment& s, uint32_t* first,
                                uint32_t* last) {
  auto lo = std::lower_bound(boundaries.begin(), boundaries.end(), s.x1);
  auto hi = std::upper_bound(boundaries.begin(), boundaries.end(), s.x2);
  if (lo >= hi) return false;
  *first = static_cast<uint32_t>(lo - boundaries.begin());
  *last = static_cast<uint32_t>(hi - boundaries.begin()) - 1;
  return true;
}

int32_t IntervalTree::BuildMultislabDirectory(Node* node, uint32_t lo,
                                              uint32_t hi) {
  MultislabNode m;
  m.slab_lo = lo;
  m.slab_hi = hi;
  if (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    m.left = BuildMultislabDirectory(node, lo, mid);
    m.right = BuildMultislabDirectory(node, mid + 1, hi);
  }
  m.list = std::make_unique<IdTree>(pool_, ById{});
  node->mtree.push_back(std::move(m));
  return static_cast<int32_t>(node->mtree.size()) - 1;
}

void IntervalTree::AllocateMultislab(const Node& node, int32_t mnode,
                                     uint32_t lo, uint32_t hi,
                                     std::vector<int32_t>* out) const {
  const MultislabNode& m = node.mtree[mnode];
  if (lo <= m.slab_lo && m.slab_hi <= hi) {
    out->push_back(mnode);
    return;
  }
  if (m.left < 0) return;
  const uint32_t mid = (m.slab_lo + m.slab_hi) / 2;
  if (lo <= mid) AllocateMultislab(node, m.left, lo, hi, out);
  if (hi > mid) AllocateMultislab(node, m.right, lo, hi, out);
}

Status IntervalTree::WriteLeafPages(Node* node) {
  // Allocate the new pages first, then free the old ones: a failed
  // allocation mid-rewrite must leave the leaf's stored pages intact.
  std::vector<io::PageId> fresh;
  const uint32_t per_page =
      io::ColumnarRegionCapacity(pool_->page_size() - kLeafHeader);
  size_t i = 0;
  while (i < node->leaf_segments.size()) {
    const uint32_t take = static_cast<uint32_t>(
        std::min<size_t>(per_page, node->leaf_segments.size() - i));
    auto ref = pool_->NewPage();
    if (!ref.ok()) {
      for (io::PageId id : fresh) pool_->FreePage(id).IgnoreError();
      return ref.status();
    }
    io::Page& p = ref.value().page();
    p.WriteAt<uint32_t>(0, take);
    // Columnar strips sized to the record count (see columnar_page_view.h).
    io::ColumnarPageView(&p, kLeafHeader, take)
        .WriteRange(0, node->leaf_segments.data() + i, take);
    ref.value().MarkDirty();
    fresh.push_back(ref.value().page_id());
    i += take;
  }
  for (io::PageId id : node->leaf_pages) {
    SEGDB_RETURN_IF_ERROR(pool_->FreePage(id));  // reliable metadata op
  }
  node->leaf_pages = std::move(fresh);
  return Status::OK();
}

Status IntervalTree::InsertAtNode(Node* node, const Segment& s) {
  uint32_t first, last;
  if (!TouchedRange(node->boundaries, s, &first, &last)) {
    return Status::Internal("InsertAtNode: touches no boundary");
  }
  if (s.x1 == s.x2) {  // point extent exactly on a boundary
    BoundaryLists& bl = node->per_boundary[first];
    if (!bl.c) bl.c = std::make_unique<IdTree>(pool_, ById{});
    return bl.c->Insert(s);
  }
  // A segment lands in up to L + R + several multislab lists; a failed
  // later insert rolls back the earlier ones. B+-tree erases never
  // allocate pages, so the rollbacks themselves cannot fault.
  bool in_l = false, in_r = false;
  if (s.x1 < node->boundaries[first]) {
    BoundaryLists& bl = node->per_boundary[first];
    if (!bl.l) bl.l = std::make_unique<LoTree>(pool_, ByLoAsc{});
    SEGDB_RETURN_IF_ERROR(bl.l->Insert(s));
    in_l = true;
  }
  if (s.x2 > node->boundaries[last]) {
    BoundaryLists& bl = node->per_boundary[last];
    if (!bl.r) bl.r = std::make_unique<HiTree>(pool_, ByHiDesc{});
    const Status st = bl.r->Insert(s);
    if (!st.ok()) {
      if (in_l) node->per_boundary[first].l->Erase(s).IgnoreError();
      return st;
    }
    in_r = true;
  }
  if (last > first && node->mroot >= 0) {
    std::vector<int32_t> alloc;
    AllocateMultislab(*node, node->mroot, first + 1, last, &alloc);
    for (size_t i = 0; i < alloc.size(); ++i) {
      const Status st = node->mtree[alloc[i]].list->Insert(s);
      if (!st.ok()) {
        for (size_t j = 0; j < i; ++j) {
          node->mtree[alloc[j]].list->Erase(s).IgnoreError();
        }
        if (in_r) node->per_boundary[last].r->Erase(s).IgnoreError();
        if (in_l) node->per_boundary[first].l->Erase(s).IgnoreError();
        return st;
      }
    }
  }
  return Status::OK();
}

Status IntervalTree::EraseAtNode(Node* node, const Segment& s) {
  uint32_t first, last;
  if (!TouchedRange(node->boundaries, s, &first, &last)) {
    return Status::Internal("EraseAtNode: touches no boundary");
  }
  if (s.x1 == s.x2) {
    BoundaryLists& bl = node->per_boundary[first];
    if (!bl.c) return Status::NotFound("segment not stored");
    return bl.c->Erase(s);
  }
  Status removed = Status::NotFound("segment not stored");
  if (s.x1 < node->boundaries[first]) {
    BoundaryLists& bl = node->per_boundary[first];
    if (!bl.l) return removed;
    SEGDB_RETURN_IF_ERROR(bl.l->Erase(s));
    removed = Status::OK();
  }
  if (s.x2 > node->boundaries[last]) {
    BoundaryLists& bl = node->per_boundary[last];
    if (!bl.r) {
      return removed.ok() ? Status::Corruption("missing R entry") : removed;
    }
    SEGDB_RETURN_IF_ERROR(bl.r->Erase(s));
    removed = Status::OK();
  }
  if (last > first && node->mroot >= 0) {
    std::vector<int32_t> alloc;
    AllocateMultislab(*node, node->mroot, first + 1, last, &alloc);
    // SEMA-LOOP: height (alloc holds the O(log #slabs) allocation nodes)
    for (int32_t mi : alloc) {
      const Status st = node->mtree[mi].list->Erase(s);
      if (!st.ok()) {
        return removed.ok() ? Status::Corruption("partial multislab entry")
                            : st;
      }
      removed = Status::OK();
    }
  }
  return removed;
}

int32_t IntervalTree::AllocNode() {
  if (!free_nodes_.empty()) {
    const int32_t idx = free_nodes_.back();
    free_nodes_.pop_back();
    nodes_[idx] = Node{};
    return idx;
  }
  nodes_.emplace_back();
  return static_cast<int32_t>(nodes_.size()) - 1;
}

Result<int32_t> IntervalTree::BuildSubtree(std::vector<Segment> segments) {
  const int32_t idx = AllocNode();
  Status built = BuildSubtreeAt(idx, std::move(segments));
  if (!built.ok()) {
    // The partial node is structurally consistent (children default to
    // -1, lists may be empty), so FreeSubtree unwinds whatever the build
    // managed to claim and returns the slot to the free list.
    FreeSubtree(idx).IgnoreError();
    return built;
  }
  return idx;
}

Status IntervalTree::BuildSubtreeAt(int32_t idx,
                                    std::vector<Segment> segments) {
  SEGDB_DCHECK(!segments.empty());
  {
    auto meta = pool_->NewPage();
    if (!meta.ok()) return meta.status();
    meta.value().MarkDirty();
    nodes_[idx].meta_page = meta.value().page_id();
  }
  nodes_[idx].subtree_size = segments.size();

  if (segments.size() <= LeafCapacity()) {
    nodes_[idx].is_leaf = true;
    nodes_[idx].leaf_segments = std::move(segments);
    return WriteLeafPages(&nodes_[idx]);
  }

  std::vector<int64_t> xs;
  xs.reserve(2 * segments.size());
  for (const Segment& s : segments) {
    xs.push_back(s.x1);
    xs.push_back(s.x2);
  }
  std::sort(xs.begin(), xs.end());
  std::vector<int64_t> boundaries;
  for (uint32_t i = 1; i <= fanout_; ++i) {
    const size_t pos = static_cast<size_t>(
        static_cast<uint64_t>(xs.size()) * i / (fanout_ + 1));
    const int64_t v = xs[std::min(pos, xs.size() - 1)];
    if (boundaries.empty() || boundaries.back() < v) boundaries.push_back(v);
  }
  if (boundaries.empty()) boundaries.push_back(xs[xs.size() / 2]);

  Node& node = nodes_[idx];
  node.is_leaf = false;
  node.boundaries = boundaries;
  node.per_boundary.resize(boundaries.size());
  node.children.assign(boundaries.size() + 1, -1);
  if (boundaries.size() >= 2) {
    node.mroot = BuildMultislabDirectory(
        &node, 1, static_cast<uint32_t>(boundaries.size()) - 1);
  }

  std::vector<std::vector<Segment>> per_slab(boundaries.size() + 1);
  for (const Segment& s : segments) {
    uint32_t first, last;
    if (!TouchedRange(node.boundaries, s, &first, &last)) {
      const uint32_t k = static_cast<uint32_t>(
          std::lower_bound(node.boundaries.begin(), node.boundaries.end(),
                           s.x1) -
          node.boundaries.begin());
      per_slab[k].push_back(s);
      continue;
    }
    SEGDB_RETURN_IF_ERROR(InsertAtNode(&node, s));
  }
  segments.clear();
  for (size_t k = 0; k < per_slab.size(); ++k) {
    if (per_slab[k].empty()) continue;
    SEGDB_DCHECK(per_slab[k].size() < nodes_[idx].subtree_size);
    Result<int32_t> child = BuildSubtree(std::move(per_slab[k]));
    if (!child.ok()) return child.status();
    nodes_[idx].children[k] = child.value();
  }
  return Status::OK();
}

Status IntervalTree::FreeSubtree(int32_t idx) {
  Node& node = nodes_[idx];
  for (int32_t child : node.children) {
    if (child >= 0) SEGDB_RETURN_IF_ERROR(FreeSubtree(child));
  }
  for (BoundaryLists& bl : node.per_boundary) {
    if (bl.c) SEGDB_RETURN_IF_ERROR(bl.c->Clear());
    if (bl.l) SEGDB_RETURN_IF_ERROR(bl.l->Clear());
    if (bl.r) SEGDB_RETURN_IF_ERROR(bl.r->Clear());
  }
  for (MultislabNode& m : node.mtree) {
    if (m.list) SEGDB_RETURN_IF_ERROR(m.list->Clear());
  }
  for (io::PageId id : node.leaf_pages) {
    SEGDB_RETURN_IF_ERROR(pool_->FreePage(id));
  }
  if (node.meta_page != io::kInvalidPageId) {
    SEGDB_RETURN_IF_ERROR(pool_->FreePage(node.meta_page));
  }
  nodes_[idx] = Node{};
  free_nodes_.push_back(idx);
  return Status::OK();
}

Status IntervalTree::CollectSubtree(int32_t idx,
                                    std::vector<Segment>* out) const {
  const Node& node = nodes_[idx];
  if (node.is_leaf) {
    out->insert(out->end(), node.leaf_segments.begin(),
                node.leaf_segments.end());
    return Status::OK();
  }
  std::unordered_set<uint64_t> seen;
  auto add = [&](const Segment& s) {
    if (seen.insert(s.id).second) out->push_back(s);
    return true;
  };
  for (const BoundaryLists& bl : node.per_boundary) {
    if (bl.c) SEGDB_RETURN_IF_ERROR(bl.c->ScanAll(add));
    if (bl.l) SEGDB_RETURN_IF_ERROR(bl.l->ScanAll(add));
    if (bl.r) SEGDB_RETURN_IF_ERROR(bl.r->ScanAll(add));
  }
  for (const MultislabNode& m : node.mtree) {
    if (m.list) SEGDB_RETURN_IF_ERROR(m.list->ScanAll(add));
  }
  for (int32_t child : node.children) {
    if (child >= 0) SEGDB_RETURN_IF_ERROR(CollectSubtree(child, out));
  }
  return Status::OK();
}

Status IntervalTree::BulkLoad(std::span<const Segment> segments) {
  SEGDB_IO_BOUND("scan");
  // Build the replacement tree aside, then swap: a failed allocation
  // mid-build must leave the previous contents intact and queryable.
  int32_t fresh = -1;
  if (!segments.empty()) {
    Result<int32_t> built =
        BuildSubtree(std::vector<Segment>(segments.begin(), segments.end()));
    if (!built.ok()) return built.status();
    fresh = built.value();
  }
  if (root_ >= 0) {
    SEGDB_RETURN_IF_ERROR(FreeSubtree(root_));  // reliable metadata ops
  }
  root_ = fresh;
  size_ = segments.size();
  return Status::OK();
}

Status IntervalTree::Insert(const Segment& segment) {
  // Amortized O(log_B n): the descent is height-bounded, but an insert
  // that trips the rebuild trigger rescans the overgrown subtree.
  SEGDB_IO_BOUND("scan");
  if (root_ < 0) {
    Result<int32_t> root = BuildSubtree({segment});
    if (!root.ok()) return root.status();
    root_ = root.value();
    ++size_;
    return Status::OK();
  }
  // Path bookkeeping (subtree_size / inserts_since_rebuild / size_) is
  // deferred until the structural mutation has fully succeeded: a failed
  // allocation mid-insert must leave every counter exactly as it was.
  std::vector<int32_t> path;
  const auto commit = [&](size_t count) {
    for (size_t i = 0; i < count; ++i) {
      ++nodes_[path[i]].subtree_size;
      ++nodes_[path[i]].inserts_since_rebuild;
    }
    ++size_;
  };
  // Reattaches a rebuilt subtree where path.back() used to hang.
  size_t parent_slot = 0;
  const auto attach = [&](int32_t rebuilt) {
    if (path.size() == 1) {
      root_ = rebuilt;
    } else {
      nodes_[path[path.size() - 2]].children[parent_slot] = rebuilt;
    }
  };
  int32_t cur = root_;
  for (;;) {
    path.push_back(cur);
    Node& node = nodes_[cur];
    if (!node.is_leaf) {
      uint64_t below = 0, max_child = 0;
      for (int32_t child : node.children) {
        const uint64_t cs = child >= 0 ? nodes_[child].subtree_size : 0;
        below += cs;
        max_child = std::max(max_child, cs);
      }
      const double share = static_cast<double>(below) /
                           static_cast<double>(node.children.size());
      // Counters are as-if-incremented (+1) since the path bookkeeping
      // has not been committed yet.
      if (below > 2 * static_cast<uint64_t>(LeafCapacity()) &&
          (node.inserts_since_rebuild + 1) * 8 > node.subtree_size + 1 &&
          static_cast<double>(max_child) >
              options_.rebuild_factor * share + LeafCapacity()) {
        std::vector<Segment> all;
        all.reserve(node.subtree_size + 1);
        SEGDB_RETURN_IF_ERROR(CollectSubtree(cur, &all));
        all.push_back(segment);
        // Build the replacement first; the old subtree stays live until
        // the build has succeeded, so failure leaves the tree untouched.
        Result<int32_t> rebuilt = BuildSubtree(std::move(all));
        if (!rebuilt.ok()) return rebuilt.status();
        SEGDB_RETURN_IF_ERROR(FreeSubtree(cur));  // reliable metadata ops
        attach(rebuilt.value());
        commit(path.size() - 1);  // the rebuilt node has fresh counters
        return Status::OK();
      }
    }
    if (node.is_leaf) {
      node.leaf_segments.push_back(segment);
      if (node.leaf_segments.size() > 2 * LeafCapacity()) {
        // Copy (not move) so a failed rebuild only needs a pop_back.
        std::vector<Segment> all = node.leaf_segments;
        Result<int32_t> rebuilt = BuildSubtree(std::move(all));
        if (!rebuilt.ok()) {
          nodes_[cur].leaf_segments.pop_back();  // arena may have grown
          return rebuilt.status();
        }
        SEGDB_RETURN_IF_ERROR(FreeSubtree(cur));
        attach(rebuilt.value());
        commit(path.size() - 1);
        return Status::OK();
      }
      const Status written = WriteLeafPages(&node);
      if (!written.ok()) {
        node.leaf_segments.pop_back();
        return written;
      }
      commit(path.size());
      return Status::OK();
    }
    uint32_t first, last;
    if (TouchedRange(node.boundaries, segment, &first, &last)) {
      SEGDB_RETURN_IF_ERROR(InsertAtNode(&node, segment));
      commit(path.size());
      return Status::OK();
    }
    const uint32_t k = static_cast<uint32_t>(
        std::lower_bound(node.boundaries.begin(), node.boundaries.end(),
                         segment.x1) -
        node.boundaries.begin());
    if (node.children[k] < 0) {
      Result<int32_t> fresh = BuildSubtree({segment});
      if (!fresh.ok()) return fresh.status();
      nodes_[cur].children[k] = fresh.value();  // arena may have grown
      commit(path.size());
      return Status::OK();
    }
    parent_slot = k;
    cur = node.children[k];
  }
}

Status IntervalTree::Erase(const Segment& segment) {
  SEGDB_IO_BOUND("log", "t/B");
  std::vector<int32_t> path;
  int32_t cur = root_;
  Status removed = Status::NotFound("segment not stored");
  while (cur >= 0) {
    path.push_back(cur);
    Node& node = nodes_[cur];
    {
      auto meta = pool_->Fetch(node.meta_page);
      if (!meta.ok()) return meta.status();
    }
    if (node.is_leaf) {
      auto it = std::find(node.leaf_segments.begin(),
                          node.leaf_segments.end(), segment);
      if (it == node.leaf_segments.end()) return removed;
      const size_t at = static_cast<size_t>(it - node.leaf_segments.begin());
      node.leaf_segments.erase(it);
      const Status written = WriteLeafPages(&node);
      if (!written.ok()) {
        // The old pages are still intact (allocate-then-swap), so restore
        // the in-memory mirror to match them.
        node.leaf_segments.insert(
            node.leaf_segments.begin() + static_cast<ptrdiff_t>(at), segment);
        return written;
      }
      removed = Status::OK();
      break;
    }
    uint32_t first, last;
    if (TouchedRange(node.boundaries, segment, &first, &last)) {
      removed = EraseAtNode(&node, segment);
      if (!removed.ok() && removed.code() != StatusCode::kNotFound) {
        return removed;
      }
      break;
    }
    const uint32_t k = static_cast<uint32_t>(
        std::lower_bound(node.boundaries.begin(), node.boundaries.end(),
                         segment.x1) -
        node.boundaries.begin());
    cur = node.children[k];
  }
  if (!removed.ok()) return removed;
  for (int32_t idx : path) --nodes_[idx].subtree_size;
  --size_;
  return Status::OK();
}

Status IntervalTree::Stab(int64_t x0, std::vector<Segment>* out) const {
  // O(log_B n + sqrt(n/B) + t/B): each node on the stabbing path scans
  // its multislab lists, the Section-4 bound (Theorem 2's inner tree).
  SEGDB_IO_BOUND("log", "sqrt", "t/B");
  int32_t cur = root_;
  while (cur >= 0) {
    const Node& node = nodes_[cur];
    {
      auto meta = pool_->Fetch(node.meta_page);
      if (!meta.ok()) return meta.status();
    }
    if (node.is_leaf) {
      for (io::PageId id : node.leaf_pages) {
        auto ref = pool_->Fetch(id);
        if (!ref.ok()) return ref.status();
        const io::Page& p = ref.value().page();
        const uint32_t count = p.ReadAt<uint32_t>(0);
        // Stab kernel over the page's x-strips, then one bulk gather.
        const io::ConstColumnarPageView view(p, kLeafHeader, count);
        geom::ResultBuffer& scratch = geom::GetThreadFilterScratch();
        uint32_t* idx = scratch.ReserveIndices(count);
        const uint32_t hits = geom::ActiveFilterKernel().filter_stab(
            view.strips(), count, x0, idx);
        view.AppendMatches(idx, hits, out);
      }
      return Status::OK();
    }

    auto it = std::lower_bound(node.boundaries.begin(), node.boundaries.end(),
                               x0);
    const bool on_boundary = it != node.boundaries.end() && *it == x0;
    const uint32_t k = static_cast<uint32_t>(it - node.boundaries.begin());
    const uint32_t inner_max =
        static_cast<uint32_t>(node.boundaries.size()) - 1;

    auto report_multislab_path = [&](uint32_t slab,
                                     std::unordered_set<uint64_t>* dedup)
        -> Status {
      if (node.mroot < 0 || slab < 1 || slab > inner_max) return Status::OK();
      int32_t mi = node.mroot;
      while (mi >= 0) {
        const MultislabNode& m = node.mtree[mi];
        SEGDB_RETURN_IF_ERROR(m.list->ScanAll([&](const Segment& s) {
          if (dedup == nullptr || dedup->insert(s.id).second) {
            out->push_back(s);
          }
          return true;
        }));
        if (m.left < 0) break;
        const uint32_t mid = (m.slab_lo + m.slab_hi) / 2;
        mi = slab <= mid ? m.left : m.right;
      }
      return Status::OK();
    };

    if (on_boundary) {
      // x0 == s_k: C_k wholesale, the non-overlapping slices of L_k and
      // R_k, and the multislab paths of both adjacent slabs.
      const BoundaryLists& bl = node.per_boundary[k];
      if (bl.c) {
        SEGDB_RETURN_IF_ERROR(bl.c->ScanAll([&](const Segment& s) {
          out->push_back(s);
          return true;
        }));
      }
      if (bl.l) {
        // Members crossing the next boundary too live in the multislab
        // lists; keep only the short ones.
        const bool has_next = k + 1 < node.boundaries.size();
        const int64_t next_b = has_next ? node.boundaries[k + 1] : 0;
        SEGDB_RETURN_IF_ERROR(bl.l->ScanAll([&](const Segment& s) {
          if (!has_next || s.x2 < next_b) out->push_back(s);
          return true;
        }));
      }
      if (bl.r) {
        SEGDB_RETURN_IF_ERROR(bl.r->ScanAll([&](const Segment& s) {
          if (s.x1 == x0) out->push_back(s);
          return true;
        }));
      }
      std::unordered_set<uint64_t> dedup;
      SEGDB_RETURN_IF_ERROR(report_multislab_path(k, &dedup));
      SEGDB_RETURN_IF_ERROR(report_multislab_path(k + 1, &dedup));
      return Status::OK();
    }

    // x0 strictly inside slab k: prefix of R_{k-1} by hi, prefix of L_k by
    // lo, full multislab path.
    if (k >= 1 && node.per_boundary[k - 1].r) {
      SEGDB_RETURN_IF_ERROR(node.per_boundary[k - 1].r->ScanAll(
          [&](const Segment& s) {
            if (s.x2 < x0) return false;  // hi-descending: prefix ends
            out->push_back(s);
            return true;
          }));
    }
    if (k < node.boundaries.size() && node.per_boundary[k].l) {
      SEGDB_RETURN_IF_ERROR(
          node.per_boundary[k].l->ScanAll([&](const Segment& s) {
            if (s.x1 > x0) return false;  // lo-ascending: prefix ends
            out->push_back(s);
            return true;
          }));
    }
    SEGDB_RETURN_IF_ERROR(report_multislab_path(k, nullptr));
    cur = node.children[k];
  }
  return Status::OK();
}

uint64_t IntervalTree::page_count() const {
  uint64_t total = 0;
  std::vector<int32_t> stack;
  if (root_ >= 0) stack.push_back(root_);
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    total += 1 + node.leaf_pages.size();
    for (const BoundaryLists& bl : node.per_boundary) {
      if (bl.c) total += bl.c->page_count();
      if (bl.l) total += bl.l->page_count();
      if (bl.r) total += bl.r->page_count();
    }
    for (const MultislabNode& m : node.mtree) {
      if (m.list) total += m.list->page_count();
    }
    for (int32_t child : node.children) {
      if (child >= 0) stack.push_back(child);
    }
  }
  return total;
}

uint32_t IntervalTree::SubtreeHeight(int32_t idx) const {
  if (idx < 0) return 0;
  uint32_t h = 0;
  for (int32_t child : nodes_[idx].children) {
    h = std::max(h, SubtreeHeight(child));
  }
  return 1 + h;
}

Status IntervalTree::CheckInvariants() const {
  // Light structural audit: every stored segment must be re-collectable
  // exactly once and sizes must agree.
  if (root_ < 0) {
    return size_ == 0 ? Status::OK() : Status::Corruption("size_ mismatch");
  }
  std::vector<Segment> all;
  SEGDB_RETURN_IF_ERROR(CollectSubtree(root_, &all));
  if (all.size() != size_) return Status::Corruption("size_ mismatch");
  std::unordered_set<uint64_t> ids;
  for (const Segment& s : all) {
    if (!ids.insert(s.id).second) {
      return Status::Corruption("segment collected twice");
    }
  }
  return Status::OK();
}

}  // namespace segdb::itree
