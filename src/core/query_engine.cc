#include "core/query_engine.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "util/check.h"
#include "util/sync.h"

namespace segdb::core {

namespace {

uint32_t ResolveThreads(uint32_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

QueryEngine::QueryEngine(QueryEngineOptions options)
    : threads_(ResolveThreads(options.threads)),
      max_concurrent_(options.max_concurrent != 0 ? options.max_concurrent
                                                  : threads_),
      max_queue_(options.max_queue) {
  if (threads_ > 1) {
    pool_ = std::make_unique<util::ThreadPool>(threads_);
  }
}

Status QueryEngine::QueryBatch(
    const SegmentIndex& index, std::span<const VerticalSegmentQuery> queries,
    std::vector<std::vector<geom::Segment>>* results) {
  // Keep existing slot capacities across batches: the indexes emit results
  // in bulk (kernel match-run gather into the slot), so a warm slot absorbs
  // a whole query's output with zero allocations. clear()+resize() would
  // drop every capacity each batch.
  results->resize(queries.size());
  for (auto& slot : *results) slot.clear();
  if (queries.empty()) return Status::OK();

  if (threads_ == 1 || queries.size() == 1) {
    for (size_t i = 0; i < queries.size(); ++i) {
      SEGDB_RETURN_IF_ERROR(index.Query(queries[i], &(*results)[i]));
    }
    return Status::OK();
  }

  // Shared-cursor fan-out: each worker repeatedly claims the next
  // unclaimed query, so per-query cost skew balances dynamically while
  // every result still lands in its own slot (ordering preserved).
  // `mu` guards only the completion count; the cursor is an atomic, and
  // statuses[i] / (*results)[i] are owned by whichever worker claimed i
  // (the final mutex hand-off publishes them to the waiting caller).
  struct BatchState {
    std::atomic<size_t> next{0};
    std::vector<Status> statuses;
    util::Mutex mu;
    util::CondVar done_cv;
    size_t workers_left SEGDB_GUARDED_BY(mu) = 0;
  };
  BatchState state;
  state.statuses.assign(queries.size(), Status::OK());

  const size_t workers =
      std::min<size_t>(threads_, queries.size());
  {
    util::MutexLock lock(&state.mu);
    state.workers_left = workers;
  }

  auto worker = [&index, &queries, results, &state] {
    for (;;) {
      const size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= queries.size()) break;
      state.statuses[i] = index.Query(queries[i], &(*results)[i]);
    }
    util::MutexLock lock(&state.mu);
    if (--state.workers_left == 0) state.done_cv.NotifyAll();
  };

  for (size_t w = 0; w < workers; ++w) pool_->Submit(worker);
  {
    util::MutexLock lock(&state.mu);
    while (state.workers_left != 0) state.done_cv.Wait(state.mu);
  }

  for (Status& s : state.statuses) {
    if (!s.ok()) return std::move(s);
  }
  return Status::OK();
}

void QueryEngine::GrantWaitersLocked() {
  // A grant RESERVES the slot: inflight_ goes up here, on the waiter's
  // behalf, so an arrival taking the fast path between this notify and the
  // waiter's wake-up still sees the engine at capacity. A granted waiter
  // that can no longer use its slot (deadline passed while parked) gives
  // the slot back through the same accounting: --inflight_ then re-grant.
  while (!waiters_.empty() && inflight_ < max_concurrent_) {
    Waiter* w = waiters_.front();
    waiters_.pop_front();
    ++inflight_;
    w->admitted = true;
    w->cv.NotifyOne();
  }
}

Status QueryEngine::Serve(const SegmentIndex& index,
                          const VerticalSegmentQuery& query,
                          std::vector<geom::Segment>* out,
                          util::Deadline deadline) {
  {
    util::MutexLock lock(&serve_mu_);
    if (deadline.expired()) {
      ++sstats_.deadline_exceeded;
      return Status::DeadlineExceeded("Serve: deadline expired on arrival");
    }
    if (inflight_ < max_concurrent_) {
      ++inflight_;  // fast path: free slot, no queueing
    } else {
      if (waiters_.size() >= max_queue_) {
        ++sstats_.shed_overload;
        return Status::Overloaded("Serve: admission queue full");
      }
      Waiter self;
      waiters_.push_back(&self);
      ++sstats_.queued;
      sstats_.max_queue_depth =
          std::max<uint64_t>(sstats_.max_queue_depth, waiters_.size());
      while (!self.admitted) {
        if (deadline.is_infinite()) {
          self.cv.Wait(serve_mu_);
        } else if (!self.cv.WaitUntil(serve_mu_, deadline.when())) {
          // Timed out — but the grant may have landed in the window
          // between the clock expiring and this thread re-acquiring the
          // mutex, so break to the admitted re-check rather than assuming.
          break;
        }
      }
      if (!self.admitted) {
        // Expired while queued: withdraw. Still in the deque, because only
        // a grant removes a waiter and a grant sets admitted.
        auto it = std::find(waiters_.begin(), waiters_.end(), &self);
        SEGDB_CHECK(it != waiters_.end());
        waiters_.erase(it);
        ++sstats_.deadline_exceeded;
        return Status::DeadlineExceeded("Serve: deadline expired in queue");
      }
      if (deadline.expired()) {
        // Granted a slot this request can no longer use: give the
        // reservation back and pass it down the line.
        --inflight_;
        GrantWaitersLocked();
        ++sstats_.deadline_exceeded;
        return Status::DeadlineExceeded(
            "Serve: deadline expired while queued for a slot");
      }
    }
    ++sstats_.admitted;
  }

  // Slot held; run on the calling thread, outside the admission lock.
  Status status = index.Query(query, out);

  {
    util::MutexLock lock(&serve_mu_);
    ++sstats_.completed;
    --inflight_;
    GrantWaitersLocked();
    if (status.ok() && deadline.expired()) {
      // The work finished but past its deadline — the caller asked for an
      // answer by `deadline`, and a late answer is a miss, not a success.
      ++sstats_.deadline_exceeded;
      status = Status::DeadlineExceeded("Serve: deadline expired during query");
    }
  }
  return status;
}

ServingStats QueryEngine::serving_stats() const {
  util::MutexLock lock(&serve_mu_);
  ServingStats out = sstats_;
  out.queue_depth = waiters_.size();
  out.inflight = inflight_;
  return out;
}

void QueryEngine::ResetServingStats() {
  util::MutexLock lock(&serve_mu_);
  sstats_ = ServingStats{};
}

}  // namespace segdb::core
