#include "core/query_engine.h"

#include <atomic>
#include <thread>

#include "util/sync.h"

namespace segdb::core {

namespace {

uint32_t ResolveThreads(uint32_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

QueryEngine::QueryEngine(QueryEngineOptions options)
    : threads_(ResolveThreads(options.threads)) {
  if (threads_ > 1) {
    pool_ = std::make_unique<util::ThreadPool>(threads_);
  }
}

Status QueryEngine::QueryBatch(
    const SegmentIndex& index, std::span<const VerticalSegmentQuery> queries,
    std::vector<std::vector<geom::Segment>>* results) {
  // Keep existing slot capacities across batches: the indexes emit results
  // in bulk (kernel match-run gather into the slot), so a warm slot absorbs
  // a whole query's output with zero allocations. clear()+resize() would
  // drop every capacity each batch.
  results->resize(queries.size());
  for (auto& slot : *results) slot.clear();
  if (queries.empty()) return Status::OK();

  if (threads_ == 1 || queries.size() == 1) {
    for (size_t i = 0; i < queries.size(); ++i) {
      SEGDB_RETURN_IF_ERROR(index.Query(queries[i], &(*results)[i]));
    }
    return Status::OK();
  }

  // Shared-cursor fan-out: each worker repeatedly claims the next
  // unclaimed query, so per-query cost skew balances dynamically while
  // every result still lands in its own slot (ordering preserved).
  // `mu` guards only the completion count; the cursor is an atomic, and
  // statuses[i] / (*results)[i] are owned by whichever worker claimed i
  // (the final mutex hand-off publishes them to the waiting caller).
  struct BatchState {
    std::atomic<size_t> next{0};
    std::vector<Status> statuses;
    util::Mutex mu;
    util::CondVar done_cv;
    size_t workers_left SEGDB_GUARDED_BY(mu) = 0;
  };
  BatchState state;
  state.statuses.assign(queries.size(), Status::OK());

  const size_t workers =
      std::min<size_t>(threads_, queries.size());
  {
    util::MutexLock lock(&state.mu);
    state.workers_left = workers;
  }

  auto worker = [&index, &queries, results, &state] {
    for (;;) {
      const size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= queries.size()) break;
      state.statuses[i] = index.Query(queries[i], &(*results)[i]);
    }
    util::MutexLock lock(&state.mu);
    if (--state.workers_left == 0) state.done_cv.NotifyAll();
  };

  for (size_t w = 0; w < workers; ++w) pool_->Submit(worker);
  {
    util::MutexLock lock(&state.mu);
    while (state.workers_left != 0) state.done_cv.Wait(state.mu);
  }

  for (Status& s : state.statuses) {
    if (!s.ok()) return std::move(s);
  }
  return Status::OK();
}

}  // namespace segdb::core
