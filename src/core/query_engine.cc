#include "core/query_engine.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace segdb::core {

namespace {

uint32_t ResolveThreads(uint32_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

QueryEngine::QueryEngine(QueryEngineOptions options)
    : threads_(ResolveThreads(options.threads)) {
  if (threads_ > 1) {
    pool_ = std::make_unique<util::ThreadPool>(threads_);
  }
}

Status QueryEngine::QueryBatch(
    const SegmentIndex& index, std::span<const VerticalSegmentQuery> queries,
    std::vector<std::vector<geom::Segment>>* results) {
  // Keep existing slot capacities across batches: the indexes emit results
  // in bulk (kernel match-run gather into the slot), so a warm slot absorbs
  // a whole query's output with zero allocations. clear()+resize() would
  // drop every capacity each batch.
  results->resize(queries.size());
  for (auto& slot : *results) slot.clear();
  if (queries.empty()) return Status::OK();

  if (threads_ == 1 || queries.size() == 1) {
    for (size_t i = 0; i < queries.size(); ++i) {
      SEGDB_RETURN_IF_ERROR(index.Query(queries[i], &(*results)[i]));
    }
    return Status::OK();
  }

  // Shared-cursor fan-out: each worker repeatedly claims the next
  // unclaimed query, so per-query cost skew balances dynamically while
  // every result still lands in its own slot (ordering preserved).
  struct BatchState {
    std::atomic<size_t> next{0};
    std::vector<Status> statuses;
    std::mutex mu;
    std::condition_variable done_cv;
    size_t workers_left = 0;
  };
  BatchState state;
  state.statuses.assign(queries.size(), Status::OK());

  const size_t workers =
      std::min<size_t>(threads_, queries.size());
  state.workers_left = workers;

  auto worker = [&index, &queries, results, &state] {
    for (;;) {
      const size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= queries.size()) break;
      state.statuses[i] = index.Query(queries[i], &(*results)[i]);
    }
    std::lock_guard<std::mutex> lock(state.mu);
    if (--state.workers_left == 0) state.done_cv.notify_all();
  };

  for (size_t w = 0; w < workers; ++w) pool_->Submit(worker);
  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.done_cv.wait(lock, [&state] { return state.workers_left == 0; });
  }

  for (Status& s : state.statuses) {
    if (!s.ok()) return std::move(s);
  }
  return Status::OK();
}

}  // namespace segdb::core
