// Solution B — Section 4 of the paper (Theorem 2).
//
// First level: an external interval tree with fan-out b (default B/4, the
// paper's choice). Each internal node picks b slab-boundary lines s_0 <
// ... < s_{b-1} (endpoint quantiles of its segment set); a segment stays
// at the highest node where it touches or crosses a boundary, otherwise
// it falls into the child of the slab that strictly contains it. Leaves
// hold <= B segments in raw pages.
//
// Per internal node (Section 4.2), segments are organized as:
//   C_i  — segments lying ON boundary s_i: a PointPst over their y-extents.
//   L_i  — segments whose *first* crossed boundary is s_i with a
//          non-degenerate left part (x1 < s_i): a left-extending LinePst
//          based at s_i (the paper's short left fragments, stored uncut).
//   R_i  — symmetric: last crossed boundary s_i, x2 > s_i.
//   G    — long parts (segments crossing >= 2 boundaries): the multislab
//          segment tree with fractional cascading (Section 4.3).
//
// A query x = x0 walks the root-to-leaf path. In a node, if x0 hits
// boundary s_i the query searches C_i, L_i, R_i and G and stops (segments
// below cross no boundary, hence cannot meet x0); otherwise x0 lies in
// slab k and the query searches R_{k-1}, L_k and G, then descends. The
// three sources partition the answers at the node (proof sketch in
// DESIGN.md), so nothing is reported twice.
//
// Costs (Theorem 2): O(n log2 B) blocks; query
// O(log_B n (log_B n + log2 B + IL*(B)) + t) — the log_B n inner term
// drops to O(1) amortized per level via G's bridges; insertion
// O(log_B n + log2 B + log_B^2 n / B) amortized, realized here by
// partial rebuilding (weight-balanced first level) plus G's delta buffer.
#ifndef SEGDB_CORE_TWO_LEVEL_INTERVAL_INDEX_H_
#define SEGDB_CORE_TWO_LEVEL_INTERVAL_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/segment_index.h"
#include "io/buffer_pool.h"
#include "pst/line_pst.h"
#include "pst/point_pst.h"
#include "segtree/multislab_segment_tree.h"
#include "util/status.h"

namespace segdb::core {

struct TwoLevelIntervalOptions {
  // First-level fan-out: number of boundaries per node. 0 = auto (B/4).
  uint32_t fanout = 0;
  // Second-level PST fan-out (0 = packed/auto).
  uint32_t pst_fanout = 0;
  // Leaf capacity in segments: 0 = one page's worth.
  uint32_t leaf_capacity = 0;
  // Use fractional cascading in G (Section 4.3). Off reproduces Lemma 4.
  bool fractional_cascading = true;
  // G bridge density (paper's d).
  uint32_t bridge_d = 2;
  // Partial-rebuild trigger for first-level children.
  double rebuild_factor = 2.0;
};

class TwoLevelIntervalIndex final : public SegmentIndex {
 public:
  TwoLevelIntervalIndex(io::BufferPool* pool,
                        TwoLevelIntervalOptions options = {});
  ~TwoLevelIntervalIndex() override;

  TwoLevelIntervalIndex(const TwoLevelIntervalIndex&) = delete;
  TwoLevelIntervalIndex& operator=(const TwoLevelIntervalIndex&) = delete;

  Status BulkLoad(std::span<const geom::Segment> segments) override;
  Status Insert(const geom::Segment& segment) override;
  Status Erase(const geom::Segment& segment) override;
  Status Query(const VerticalSegmentQuery& query,
               std::vector<geom::Segment>* out) const override;
  uint64_t size() const override { return size_; }
  uint64_t page_count() const override;
  std::string name() const override { return "two-level-interval"; }

  uint32_t fanout() const { return fanout_; }
  uint32_t height() const;
  // Structural self-check (tests): fan-out b = B/4 slab coverage, the
  // C_i/L_i/R_i/G routing partition per node, size bookkeeping, and every
  // second-level structure's own invariants.
  Status CheckInvariants() const override;

 private:
  struct BoundaryStructs {
    std::unique_ptr<pst::PointPst> c;
    std::unique_ptr<pst::LinePst> l;
    std::unique_ptr<pst::LinePst> r;
  };

  struct Node {
    bool is_leaf = false;
    std::vector<int64_t> boundaries;        // internal nodes
    std::vector<BoundaryStructs> per_boundary;
    std::unique_ptr<segtree::MultislabSegmentTree> g;
    std::vector<int32_t> children;          // children[k] = slab k, -1 none
    uint64_t subtree_size = 0;
    // Inserts absorbed since this subtree was last (re)built: a rebuild
    // is allowed only after enough inserts to pay for it, which keeps
    // partial rebuilding amortized even when re-quantiled boundaries
    // cannot improve balance (duplicate-heavy x distributions).
    uint64_t inserts_since_rebuild = 0;
    io::PageId meta_page = io::kInvalidPageId;
    std::vector<io::PageId> leaf_pages;
    std::vector<geom::Segment> leaf_segments;
  };

  uint32_t LeafCapacity() const;
  pst::LinePstOptions PstOptions() const;

  // First (lowest-index) and last boundary of `node` touched by s;
  // returns false when s crosses none.
  static bool TouchedRange(const std::vector<int64_t>& boundaries,
                           const geom::Segment& s, uint32_t* first,
                           uint32_t* last);

  // Takes a node slot from the free list (or grows the arena).
  int32_t AllocNode();
  // Builds a subtree for `segments`. Fault-atomic: on failure every page
  // and arena slot the partial build claimed is released before the error
  // returns, so a failed build is a no-op on the index.
  Result<int32_t> BuildSubtree(std::vector<geom::Segment> segments);
  Status BuildSubtreeAt(int32_t idx, std::vector<geom::Segment> segments);
  Status FreeSubtree(int32_t idx);
  Status CollectSubtree(int32_t idx, std::vector<geom::Segment>* out) const;
  Status WriteLeafPages(Node* node);
  Status InsertAtNode(int32_t idx, const geom::Segment& s);
  Status CheckSubtree(int32_t idx, const int64_t* lo, const int64_t* hi,
                      uint64_t* total) const;
  uint32_t SubtreeHeight(int32_t idx) const;

  io::BufferPool* pool_;
  TwoLevelIntervalOptions options_;
  uint32_t fanout_ = 0;
  std::vector<Node> nodes_;
  std::vector<int32_t> free_nodes_;
  int32_t root_ = -1;
  uint64_t size_ = 0;
};

}  // namespace segdb::core

#endif  // SEGDB_CORE_TWO_LEVEL_INTERVAL_INDEX_H_
