// Pre-indexing validation: everything a segment set must satisfy before
// being handed to a SegmentIndex, checked in O(n log n):
//   * canonical form and coordinate bounds (geom::kMaxCoord),
//   * unique ids,
//   * the NCT invariant (no proper crossings), via the plane sweep.
// Index BulkLoad/Insert do not re-validate (the checks cost more than the
// build); call this at ingestion boundaries, as the examples do.
#ifndef SEGDB_CORE_VALIDATE_H_
#define SEGDB_CORE_VALIDATE_H_

#include <span>

#include "geom/segment.h"
#include "util/status.h"

namespace segdb::core {

Status ValidateForIndexing(std::span<const geom::Segment> segments);

}  // namespace segdb::core

#endif  // SEGDB_CORE_VALIDATE_H_
