// Fixed-direction generalized queries — the paper's footnote 1: "if the
// query segment is not vertical, coordinate axes can be appropriately
// rotated". Over integer coordinates the right bijection is a *shear*:
// for a query direction (dx, dy) (a rational slope), the map
//
//     T(x, y) = (dy*x - dx*y, y)          when dy != 0
//     T(x, y) = (y, x)                    when dy == 0 (transpose)
//
// sends every line of direction (dx, dy) to a vertical line, is linear
// and invertible (so NCT sets stay NCT, intersections are preserved), and
// keeps coordinates integral in both directions. ShearedIndex stores the
// transformed segments in any SegmentIndex and answers queries along the
// fixed direction by delegating vertical queries.
//
// Coordinate budget: |T(x,y)| <= (|dx| + |dy|) * max|coord|, so inputs
// must satisfy max|coord| <= kMaxCoord / (|dx| + |dy|); violations are
// rejected with InvalidArgument.
#ifndef SEGDB_CORE_SHEARED_INDEX_H_
#define SEGDB_CORE_SHEARED_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/segment_index.h"
#include "geom/segment.h"
#include "util/status.h"

namespace segdb::core {

class ShearedIndex {
 public:
  // `direction` = (dx, dy), not both zero. Vertical (0, 1) degenerates to
  // the identity; horizontal (1, 0) to a transpose.
  ShearedIndex(std::unique_ptr<SegmentIndex> inner, int64_t dir_x,
               int64_t dir_y);

  Status BulkLoad(std::span<const geom::Segment> segments);
  Status Insert(const geom::Segment& segment);
  Status Erase(const geom::Segment& segment);

  // Reports every stored segment intersecting the query segment that
  // starts at `anchor` and extends `steps` direction-units along
  // (dir_x, dir_y) (steps >= 0; steps == 0 is a point probe).
  Status QuerySegment(geom::Point anchor, int64_t steps,
                      std::vector<geom::Segment>* out) const;

  // Reports every stored segment intersecting the full line through
  // `anchor` with the fixed direction.
  Status QueryLine(geom::Point anchor,
                   std::vector<geom::Segment>* out) const;

  uint64_t size() const { return inner_->size(); }
  uint64_t page_count() const { return inner_->page_count(); }
  std::string name() const { return "sheared(" + inner_->name() + ")"; }

  // The shear is stateless beyond the wrapped index, so auditing delegates
  // to the inner structure (which holds the transformed segments).
  Status CheckInvariants() const { return inner_->CheckInvariants(); }

 private:
  geom::Point Forward(geom::Point p) const;
  geom::Point Backward(geom::Point p) const;
  Status ValidateInput(const geom::Segment& s) const;
  Status RunQuery(const VerticalSegmentQuery& q,
                  std::vector<geom::Segment>* out) const;

  std::unique_ptr<SegmentIndex> inner_;
  int64_t dx_;
  int64_t dy_;
  bool transpose_;  // dy == 0 path
};

}  // namespace segdb::core

#endif  // SEGDB_CORE_SHEARED_INDEX_H_
