#include "core/sheared_index.h"

#include "util/check.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace segdb::core {

namespace {
using geom::Point;
using geom::Segment;
}  // namespace

ShearedIndex::ShearedIndex(std::unique_ptr<SegmentIndex> inner, int64_t dir_x,
                           int64_t dir_y)
    : inner_(std::move(inner)), dx_(dir_x), dy_(dir_y) {
  SEGDB_DCHECK(!(dx_ == 0 && dy_ == 0)) << "direction must be nonzero";
  // The direction's sign is preserved — segment queries extend along the
  // caller's (dx, dy), not its reflection.
  transpose_ = (dy_ == 0);
}

Point ShearedIndex::Forward(Point p) const {
  if (transpose_) return Point{p.y, p.x};
  return Point{dy_ * p.x - dx_ * p.y, p.y};
}

Point ShearedIndex::Backward(Point p) const {
  if (transpose_) return Point{p.y, p.x};
  // x = (u + dx*v) / dy — exact by construction.
  return Point{(p.x + dx_ * p.y) / dy_, p.y};
}

Status ShearedIndex::ValidateInput(const Segment& s) const {
  const int64_t budget =
      geom::kMaxCoord / (std::abs(dx_) + std::abs(dy_));
  if (std::abs(s.x1) > budget || std::abs(s.x2) > budget ||
      std::abs(s.y1) > budget || std::abs(s.y2) > budget) {
    return Status::InvalidArgument(
        "segment " + std::to_string(s.id) +
        " exceeds the sheared coordinate budget");
  }
  return Status::OK();
}

Status ShearedIndex::BulkLoad(std::span<const Segment> segments) {
  SEGDB_IO_BOUND("scan");
  std::vector<Segment> transformed;
  transformed.reserve(segments.size());
  for (const Segment& s : segments) {
    SEGDB_RETURN_IF_ERROR(ValidateInput(s));
    transformed.push_back(
        Segment::Make(Forward(s.lo()), Forward(s.hi()), s.id));
  }
  return inner_->BulkLoad(transformed);
}

Status ShearedIndex::Insert(const Segment& s) {
  SEGDB_IO_BOUND("scan");  // cost class of the wrapped index's insert
  SEGDB_RETURN_IF_ERROR(ValidateInput(s));
  return inner_->Insert(Segment::Make(Forward(s.lo()), Forward(s.hi()), s.id));
}

Status ShearedIndex::Erase(const Segment& s) {
  SEGDB_IO_BOUND("scan");  // cost class of the wrapped index's erase
  SEGDB_RETURN_IF_ERROR(ValidateInput(s));
  return inner_->Erase(Segment::Make(Forward(s.lo()), Forward(s.hi()), s.id));
}

Status ShearedIndex::RunQuery(const VerticalSegmentQuery& q,
                              std::vector<Segment>* out) const {
  // The shear only re-labels coordinates, so the wrapped index's query
  // bound carries over unchanged. `inner_` is one of the paper's
  // structures (Theorem 1 or 2 class); the checker's virtual-dispatch
  // union over every SegmentIndex::Query over-approximates to scan.
  // SEMA-OK: virtual inner index; bound matches the wrapped structure
  SEGDB_IO_BOUND("log", "sqrt", "t/B");
  std::vector<Segment> transformed;
  SEGDB_RETURN_IF_ERROR(inner_->Query(q, &transformed));
  out->reserve(out->size() + transformed.size());
  for (const Segment& s : transformed) {
    out->push_back(Segment::Make(Backward(s.lo()), Backward(s.hi()), s.id));
  }
  return Status::OK();
}

Status ShearedIndex::QuerySegment(Point anchor, int64_t steps,
                                  std::vector<Segment>* out) const {
  SEGDB_IO_BOUND("log", "sqrt", "t/B");  // RunQuery's class (footnote 1)
  if (steps < 0) return Status::InvalidArgument("steps must be >= 0");
  const Point a = Forward(anchor);
  // In the transformed plane the query runs vertically from a.y by
  // steps * (direction's v-component), whose sign follows the direction.
  const int64_t rise = (transpose_ ? dx_ : dy_) * steps;
  return RunQuery(VerticalSegmentQuery::Segment(a.x, std::min(a.y, a.y + rise),
                                                std::max(a.y, a.y + rise)),
                  out);
}

Status ShearedIndex::QueryLine(Point anchor,
                               std::vector<Segment>* out) const {
  SEGDB_IO_BOUND("log", "sqrt", "t/B");  // RunQuery's class (footnote 1)
  const Point a = Forward(anchor);
  return RunQuery(VerticalSegmentQuery::Line(a.x), out);
}

}  // namespace segdb::core
