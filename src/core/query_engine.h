// Parallel batch-query engine over any SegmentIndex. Queries in a batch
// are independent reads, so they fan out across a fixed worker pool; the
// storage layer below (BufferPool / DiskManager read paths) is thread-safe
// for exactly this pattern. Results keep the batch's ordering: result i is
// what index.Query(queries[i], ...) appends, byte for byte.
//
// With threads == 1 the engine runs the batch inline on the calling
// thread, bit-identical to a plain Query loop (the determinism and
// exactness suites rely on this).
//
// The batch must not run concurrently with writers of the same index or
// pool (BulkLoad / Insert / Erase / NewPage / EvictAll): the engine
// parallelizes readers, it does not add reader-writer isolation.
#ifndef SEGDB_CORE_QUERY_ENGINE_H_
#define SEGDB_CORE_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/segment_index.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace segdb::core {

struct QueryEngineOptions {
  // Worker threads for batches. 0 = hardware concurrency; 1 = inline
  // (no pool, bit-identical to a serial Query loop).
  uint32_t threads = 0;
};

class QueryEngine {
 public:
  explicit QueryEngine(QueryEngineOptions options = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  uint32_t threads() const { return threads_; }

  // Answers queries[i] into (*results)[i] (cleared and resized to the
  // batch size). Returns the first non-OK Status in *batch order*; on
  // error, results at and after the first failing query are unspecified.
  // Inline when threads() == 1; otherwise queries are drawn from a shared
  // cursor by the worker pool, so an expensive query never blocks the
  // rest of the batch behind a static partition.
  Status QueryBatch(const SegmentIndex& index,
                    std::span<const VerticalSegmentQuery> queries,
                    std::vector<std::vector<geom::Segment>>* results);

 private:
  uint32_t threads_;
  std::unique_ptr<util::ThreadPool> pool_;  // null when threads_ == 1
};

}  // namespace segdb::core

#endif  // SEGDB_CORE_QUERY_ENGINE_H_
