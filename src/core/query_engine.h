// Parallel batch-query engine and serving layer over any SegmentIndex.
//
// QueryBatch: queries in a batch are independent reads, so they fan out
// across a fixed worker pool; the storage layer below (BufferPool /
// DiskManager read paths) is thread-safe for exactly this pattern.
// Results keep the batch's ordering: result i is what
// index.Query(queries[i], ...) appends, byte for byte. With threads == 1
// the engine runs the batch inline on the calling thread, bit-identical
// to a plain Query loop (the determinism and exactness suites rely on
// this).
//
// Serve: the per-request entry point for a server handling independent
// clients. Each request runs on its *calling* thread (clients bring their
// own concurrency) but passes admission control first:
//
//     arrive -> [deadline expired?] -> kDeadlineExceeded
//            -> [slot free?]        -> execute
//            -> [queue full?]       -> kOverloaded (shed; retryable)
//            -> wait FIFO           -> granted slot -> execute
//                                   -> deadline passes -> kDeadlineExceeded
//
// At most max_concurrent requests execute at once; excess waiters queue
// (bounded by max_queue) and are granted slots in arrival order as
// executions finish. A waiter whose deadline passes leaves the queue; a
// waiter granted a slot it can no longer use hands it to the next in
// line. Load past the queue bound is shed immediately with the distinct,
// retryable kOverloaded — a full queue means waiting would only add
// latency for everyone (the paper's north star is serving heavy traffic
// as fast as the hardware allows, which at saturation means shedding,
// not queueing without bound). ServingStats exposes the counters the
// bench telemetry reports (queue depth, sheds, deadline misses).
//
// Neither path may run concurrently with writers of the same index or
// pool (BulkLoad / Insert / Erase / NewPage / EvictAll): the engine
// parallelizes readers, it does not add reader-writer isolation.
#ifndef SEGDB_CORE_QUERY_ENGINE_H_
#define SEGDB_CORE_QUERY_ENGINE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "core/segment_index.h"
#include "util/clock.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace segdb::core {

struct QueryEngineOptions {
  // Worker threads for batches. 0 = hardware concurrency; 1 = inline
  // (no pool, bit-identical to a serial Query loop).
  uint32_t threads = 0;
  // Serve admission control: max requests executing concurrently.
  // 0 = same as threads (after its own 0 -> hardware resolution).
  uint32_t max_concurrent = 0;
  // Serve wait queue bound: requests beyond max_concurrent wait here, in
  // FIFO order; arrivals finding the queue full are shed with
  // kOverloaded. 0 = never queue (shed the moment all slots are busy).
  uint32_t max_queue = 64;
};

struct ServingStats {
  uint64_t admitted = 0;           // requests that reached execution
  uint64_t completed = 0;          // executions finished (any status)
  uint64_t queued = 0;             // requests that waited for a slot
  uint64_t shed_overload = 0;      // rejected with kOverloaded
  uint64_t deadline_exceeded = 0;  // expired before, in, or after a slot
  uint64_t max_queue_depth = 0;    // high-water waiters
  // Gauges sampled by serving_stats(), not reset by ResetServingStats.
  uint64_t queue_depth = 0;        // current waiters
  uint64_t inflight = 0;           // currently executing
};

class QueryEngine {
 public:
  explicit QueryEngine(QueryEngineOptions options = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  uint32_t threads() const { return threads_; }

  // Answers queries[i] into (*results)[i] (cleared and resized to the
  // batch size). Returns the first non-OK Status in *batch order*; on
  // error, results at and after the first failing query are unspecified.
  // Inline when threads() == 1; otherwise queries are drawn from a shared
  // cursor by the worker pool, so an expensive query never blocks the
  // rest of the batch behind a static partition.
  Status QueryBatch(const SegmentIndex& index,
                    std::span<const VerticalSegmentQuery> queries,
                    std::vector<std::vector<geom::Segment>>* results);

  uint32_t max_concurrent() const { return max_concurrent_; }
  uint32_t max_queue() const { return max_queue_; }

  // Per-request serving entry point (see file comment): admission control
  // and deadline enforcement around one index.Query, run on the calling
  // thread once admitted. Thread-safe — any number of client threads may
  // Serve concurrently against a read-only index. Returns the query's own
  // status once executed, kOverloaded when shed at a full queue, or
  // kDeadlineExceeded when the deadline passed before admission, while
  // queued, or during execution (the result vector is then unspecified).
  Status Serve(const SegmentIndex& index, const VerticalSegmentQuery& query,
               std::vector<geom::Segment>* out,
               util::Deadline deadline = util::Deadline::Infinite());

  // Counters since the last ResetServingStats plus live gauges
  // (queue_depth, inflight) sampled at the call.
  ServingStats serving_stats() const;
  void ResetServingStats();

 private:
  // One queued Serve call, stack-allocated in its own frame. `admitted` is
  // guarded by serve_mu_; the analysis cannot express a member-of-local
  // guard, so every access sits visibly inside a serve_mu_ scope instead.
  struct Waiter {
    util::CondVar cv;
    bool admitted = false;
  };

  // Hands free slots to waiters in FIFO order, reserving the slot
  // (inflight_ is incremented on the waiter's behalf) so a fast-path
  // arrival cannot steal it between grant and wake-up.
  void GrantWaitersLocked() SEGDB_REQUIRES(serve_mu_);

  uint32_t threads_;
  std::unique_ptr<util::ThreadPool> pool_;  // null when threads_ == 1

  uint32_t max_concurrent_;
  uint32_t max_queue_;
  mutable util::Mutex serve_mu_;
  uint32_t inflight_ SEGDB_GUARDED_BY(serve_mu_) = 0;
  std::deque<Waiter*> waiters_ SEGDB_GUARDED_BY(serve_mu_);
  ServingStats sstats_ SEGDB_GUARDED_BY(serve_mu_);
};

}  // namespace segdb::core

#endif  // SEGDB_CORE_QUERY_ENGINE_H_
