// Epoch-based reclamation for build-aside-then-swap index publication
// (DESIGN.md section 18). A rebuild constructs the replacement structure
// off to the side, publishes it with one atomic pointer swap, then must
// not destroy the retired structure while a reader is still inside it.
//
// Readers Pin() an epoch around each traversal — a single fetch_add on the
// current epoch's reader slot, never a lock, so a pinned read storm keeps
// running at full speed THROUGH a swap. The publisher calls
// AdvanceAndWait() after swapping: it moves the epoch forward and waits
// for the retired epoch's slot to drain to zero, at which point no reader
// can still hold a pre-swap root and the old structure is safe to destroy.
// Readers never wait for the publisher; only the publisher waits, and only
// for readers that began before the swap.
//
// The slot ring wraps at kSlots, so at most kSlots - 1 epochs may be "in
// drain" at once; AdvanceAndWait's full drain before returning (publishers
// are serialized on mu_) makes that bound self-maintaining.
#ifndef SEGDB_CORE_EPOCH_H_
#define SEGDB_CORE_EPOCH_H_

#include <atomic>
#include <cstdint>

#include "util/sync.h"

namespace segdb::core {

class EpochManager {
 public:
  static constexpr uint32_t kSlots = 4;

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // RAII pin: holds the owning epoch's reader count up for its lifetime.
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& other) noexcept
        : owner_(other.owner_), slot_(other.slot_) {
      other.owner_ = nullptr;
    }
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        Release();
        owner_ = other.owner_;
        slot_ = other.slot_;
        other.owner_ = nullptr;
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { Release(); }

    void Release() {
      if (owner_ == nullptr) return;
      owner_->slots_[slot_].fetch_sub(1, std::memory_order_release);
      owner_ = nullptr;
    }

   private:
    friend class EpochManager;
    Guard(EpochManager* owner, uint32_t slot) : owner_(owner), slot_(slot) {}
    EpochManager* owner_ = nullptr;
    uint32_t slot_ = 0;
  };

  // Pins the current epoch. Lock-free: one fetch_add plus a recheck (the
  // rare retry happens only when an advance lands between the two).
  Guard Pin() {
    // SEMA-LOOP: bounded (one retry per concurrent epoch advance)
    for (;;) {
      const uint64_t e = epoch_.load(std::memory_order_acquire);
      const uint32_t slot = static_cast<uint32_t>(e % kSlots);
      slots_[slot].fetch_add(1, std::memory_order_acq_rel);
      if (epoch_.load(std::memory_order_acquire) == e) {
        return Guard(this, slot);
      }
      // The epoch moved under us: undo and pin the new one, so the
      // publisher's drain of the old slot is never held up by a reader
      // that hasn't actually read anything yet.
      slots_[slot].fetch_sub(1, std::memory_order_release);
    }
  }

  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // Test hook: readers currently pinned to the given epoch's slot.
  uint64_t pinned(uint64_t epoch) const {
    return slots_[epoch % kSlots].load(std::memory_order_acquire);
  }

  // Publisher side: retires the current epoch and waits until every reader
  // pinned to it has released. On return, anything unreachable since the
  // pre-advance pointer swap can be destroyed. Publishers serialize on an
  // internal mutex; readers are never blocked.
  void AdvanceAndWait();

 private:
  util::Mutex mu_;  // serializes publishers only
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> slots_[kSlots] = {};
};

}  // namespace segdb::core

#endif  // SEGDB_CORE_EPOCH_H_
