#include "core/two_level_interval_index.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "geom/filter_kernel.h"
#include "geom/predicates.h"
#include "io/columnar_page_view.h"
#include "util/check.h"

namespace segdb::core {

namespace {

using geom::Segment;

constexpr uint32_t kLeafHeader = 8;

}  // namespace

TwoLevelIntervalIndex::TwoLevelIntervalIndex(io::BufferPool* pool,
                                             TwoLevelIntervalOptions options)
    : pool_(pool), options_(options) {
  if (options_.fanout != 0) {
    fanout_ = std::max<uint32_t>(2, options_.fanout);
  } else {
    const uint32_t records_per_page =
        pool_->page_size() / static_cast<uint32_t>(sizeof(Segment));
    fanout_ = std::max<uint32_t>(2, records_per_page / 4);  // b = B/4
  }
}

TwoLevelIntervalIndex::~TwoLevelIntervalIndex() {
  if (root_ >= 0) FreeSubtree(root_).IgnoreError();
}

uint32_t TwoLevelIntervalIndex::LeafCapacity() const {
  if (options_.leaf_capacity != 0) return options_.leaf_capacity;
  return io::ColumnarRegionCapacity(pool_->page_size() - kLeafHeader);
}

pst::LinePstOptions TwoLevelIntervalIndex::PstOptions() const {
  pst::LinePstOptions o;
  o.fanout = options_.pst_fanout;
  return o;
}

bool TwoLevelIntervalIndex::TouchedRange(
    const std::vector<int64_t>& boundaries, const Segment& s, uint32_t* first,
    uint32_t* last) {
  auto lo = std::lower_bound(boundaries.begin(), boundaries.end(), s.x1);
  auto hi = std::upper_bound(boundaries.begin(), boundaries.end(), s.x2);
  if (lo >= hi) return false;
  *first = static_cast<uint32_t>(lo - boundaries.begin());
  *last = static_cast<uint32_t>(hi - boundaries.begin()) - 1;
  return true;
}

Status TwoLevelIntervalIndex::WriteLeafPages(Node* node) {
  // Allocate-then-swap for fault atomicity: all replacement pages are
  // written before any old page is freed, so an allocation failure leaves
  // the node's pages (and the mirrored segment list) untouched.
  std::vector<io::PageId> fresh;
  const uint32_t per_page =
      io::ColumnarRegionCapacity(pool_->page_size() - kLeafHeader);
  size_t i = 0;
  while (i < node->leaf_segments.size()) {
    const uint32_t take = static_cast<uint32_t>(
        std::min<size_t>(per_page, node->leaf_segments.size() - i));
    auto ref = pool_->NewPage();
    if (!ref.ok()) {
      for (io::PageId id : fresh) pool_->FreePage(id).IgnoreError();
      return ref.status();
    }
    io::Page& p = ref.value().page();
    p.WriteAt<uint32_t>(0, take);
    // Columnar strips sized to the record count (see columnar_page_view.h).
    io::ColumnarPageView(&p, kLeafHeader, take)
        .WriteRange(0, node->leaf_segments.data() + i, take);
    ref.value().MarkDirty();
    fresh.push_back(ref.value().page_id());
    i += take;
  }
  for (io::PageId id : node->leaf_pages) {
    SEGDB_RETURN_IF_ERROR(pool_->FreePage(id));  // reliable metadata op
  }
  node->leaf_pages = std::move(fresh);
  return Status::OK();
}

int32_t TwoLevelIntervalIndex::AllocNode() {
  if (!free_nodes_.empty()) {
    const int32_t idx = free_nodes_.back();
    free_nodes_.pop_back();
    nodes_[idx] = Node{};
    return idx;
  }
  const int32_t idx = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  return idx;
}

Result<int32_t> TwoLevelIntervalIndex::BuildSubtree(
    std::vector<Segment> segments) {
  const int32_t idx = AllocNode();
  Status built = BuildSubtreeAt(idx, std::move(segments));
  if (!built.ok()) {
    // Unwind whatever the partial build attached — the meta page, loaded
    // second-level structures, finished children — and return the slot.
    FreeSubtree(idx).IgnoreError();
    return built;
  }
  return idx;
}

Status TwoLevelIntervalIndex::BuildSubtreeAt(int32_t idx,
                                             std::vector<Segment> segments) {
  SEGDB_DCHECK(!segments.empty());
  {
    auto meta = pool_->NewPage();
    if (!meta.ok()) return meta.status();
    meta.value().MarkDirty();
    nodes_[idx].meta_page = meta.value().page_id();
  }
  nodes_[idx].subtree_size = segments.size();

  if (segments.size() <= LeafCapacity()) {
    nodes_[idx].is_leaf = true;
    nodes_[idx].leaf_segments = std::move(segments);
    return WriteLeafPages(&nodes_[idx]);
  }

  // Boundaries: endpoint quantiles (distinct), excluding the extremes so
  // the outer slabs stay meaningful.
  std::vector<int64_t> xs;
  xs.reserve(2 * segments.size());
  for (const Segment& s : segments) {
    xs.push_back(s.x1);
    xs.push_back(s.x2);
  }
  std::sort(xs.begin(), xs.end());
  std::vector<int64_t> boundaries;
  for (uint32_t i = 1; i <= fanout_; ++i) {
    const size_t pos = static_cast<size_t>(
        static_cast<uint64_t>(xs.size()) * i / (fanout_ + 1));
    const int64_t v = xs[std::min(pos, xs.size() - 1)];
    if (boundaries.empty() || boundaries.back() < v) boundaries.push_back(v);
  }
  if (boundaries.empty()) boundaries.push_back(xs[xs.size() / 2]);
  Node& node_init = nodes_[idx];
  node_init.is_leaf = false;
  node_init.boundaries = boundaries;
  node_init.per_boundary.resize(boundaries.size());
  node_init.children.assign(boundaries.size() + 1, -1);

  // Route every segment.
  std::vector<std::vector<Segment>> per_slab(boundaries.size() + 1);
  std::vector<std::vector<pst::PointRecord>> c_points(boundaries.size());
  std::vector<std::vector<Segment>> l_sets(boundaries.size());
  std::vector<std::vector<Segment>> r_sets(boundaries.size());
  std::vector<Segment> long_set;
  for (const Segment& s : segments) {
    uint32_t first, last;
    if (!TouchedRange(boundaries, s, &first, &last)) {
      const uint32_t k = static_cast<uint32_t>(
          std::lower_bound(boundaries.begin(), boundaries.end(), s.x1) -
          boundaries.begin());
      per_slab[k].push_back(s);
      continue;
    }
    if (s.is_vertical()) {
      // On the boundary line (TouchedRange true for a vertical segment
      // only when x1 == boundaries[first]).
      c_points[first].push_back(pst::PointRecord{s.y1, s.y2, s.id});
      continue;
    }
    if (s.x1 < boundaries[first]) l_sets[first].push_back(s);
    if (s.x2 > boundaries[last]) r_sets[last].push_back(s);
    if (last > first) long_set.push_back(s);
  }
  segments.clear();

  // Second-level structures are attached to the node before loading so a
  // failed load is still reachable by the caller's FreeSubtree unwind.
  for (size_t i = 0; i < boundaries.size(); ++i) {
    if (!c_points[i].empty()) {
      nodes_[idx].per_boundary[i].c =
          std::make_unique<pst::PointPst>(pool_, PstOptions());
      SEGDB_RETURN_IF_ERROR(nodes_[idx].per_boundary[i].c->BulkLoad(
          c_points[i]));
    }
    if (!l_sets[i].empty()) {
      nodes_[idx].per_boundary[i].l = std::make_unique<pst::LinePst>(
          pool_, boundaries[i], pst::Direction::kLeft, PstOptions());
      SEGDB_RETURN_IF_ERROR(nodes_[idx].per_boundary[i].l->BulkLoad(l_sets[i]));
    }
    if (!r_sets[i].empty()) {
      nodes_[idx].per_boundary[i].r = std::make_unique<pst::LinePst>(
          pool_, boundaries[i], pst::Direction::kRight, PstOptions());
      SEGDB_RETURN_IF_ERROR(nodes_[idx].per_boundary[i].r->BulkLoad(r_sets[i]));
    }
  }
  if (!long_set.empty()) {
    segtree::MultislabOptions g_opts;
    g_opts.fractional_cascading = options_.fractional_cascading;
    g_opts.bridge_d = options_.bridge_d;
    nodes_[idx].g = std::make_unique<segtree::MultislabSegmentTree>(
        pool_, boundaries, g_opts);
    SEGDB_RETURN_IF_ERROR(nodes_[idx].g->Build(long_set));
  }
  for (size_t k = 0; k < per_slab.size(); ++k) {
    if (per_slab[k].empty()) continue;
    SEGDB_DCHECK(per_slab[k].size() < nodes_[idx].subtree_size);
    // Recursive builds self-clean on failure; finished children hang off
    // nodes_[idx].children and are released by the caller's unwind.
    Result<int32_t> child = BuildSubtree(std::move(per_slab[k]));
    if (!child.ok()) return child.status();
    nodes_[idx].children[k] = child.value();
  }
  return Status::OK();
}

Status TwoLevelIntervalIndex::FreeSubtree(int32_t idx) {
  Node& node = nodes_[idx];
  for (int32_t child : node.children) {
    if (child >= 0) SEGDB_RETURN_IF_ERROR(FreeSubtree(child));
  }
  for (BoundaryStructs& bs : node.per_boundary) {
    if (bs.c) SEGDB_RETURN_IF_ERROR(bs.c->Clear());
    if (bs.l) SEGDB_RETURN_IF_ERROR(bs.l->Clear());
    if (bs.r) SEGDB_RETURN_IF_ERROR(bs.r->Clear());
  }
  if (node.g) SEGDB_RETURN_IF_ERROR(node.g->Clear());
  for (io::PageId id : node.leaf_pages) {
    SEGDB_RETURN_IF_ERROR(pool_->FreePage(id));
  }
  if (node.meta_page != io::kInvalidPageId) {
    SEGDB_RETURN_IF_ERROR(pool_->FreePage(node.meta_page));
  }
  nodes_[idx] = Node{};
  free_nodes_.push_back(idx);
  return Status::OK();
}

Status TwoLevelIntervalIndex::CollectSubtree(
    int32_t idx, std::vector<Segment>* out) const {
  const Node& node = nodes_[idx];
  if (node.is_leaf) {
    out->insert(out->end(), node.leaf_segments.begin(),
                node.leaf_segments.end());
    return Status::OK();
  }
  // A crossing segment may live in an L, an R, and G; dedup by id.
  std::unordered_set<uint64_t> seen;
  auto add = [&](const Segment& s) {
    if (seen.insert(s.id).second) out->push_back(s);
  };
  for (size_t i = 0; i < node.per_boundary.size(); ++i) {
    const BoundaryStructs& bs = node.per_boundary[i];
    if (bs.c) {
      std::vector<pst::PointRecord> points;
      SEGDB_RETURN_IF_ERROR(bs.c->CollectAll(&points));
      for (const auto& p : points) {
        add(Segment::Make({node.boundaries[i], p.x}, {node.boundaries[i], p.y},
                          p.id));
      }
    }
    std::vector<Segment> tmp;
    if (bs.l) SEGDB_RETURN_IF_ERROR(bs.l->CollectAll(&tmp));
    if (bs.r) SEGDB_RETURN_IF_ERROR(bs.r->CollectAll(&tmp));
    for (const Segment& s : tmp) add(s);
  }
  if (node.g) {
    std::vector<Segment> tmp;
    SEGDB_RETURN_IF_ERROR(node.g->CollectAll(&tmp));
    for (const Segment& s : tmp) add(s);
  }
  for (int32_t child : node.children) {
    if (child >= 0) SEGDB_RETURN_IF_ERROR(CollectSubtree(child, out));
  }
  return Status::OK();
}

Status TwoLevelIntervalIndex::BulkLoad(std::span<const Segment> segments) {
  SEGDB_IO_BOUND("scan");
  if (segments.empty()) {
    if (root_ >= 0) {
      SEGDB_RETURN_IF_ERROR(FreeSubtree(root_));
      root_ = -1;
    }
    size_ = 0;
    return Status::OK();
  }
  // Build the replacement before freeing the old tree: a failed build must
  // leave the previous contents fully queryable.
  Result<int32_t> root =
      BuildSubtree(std::vector<Segment>(segments.begin(), segments.end()));
  if (!root.ok()) return root.status();
  if (root_ >= 0) SEGDB_RETURN_IF_ERROR(FreeSubtree(root_));
  root_ = root.value();
  size_ = segments.size();
  return Status::OK();
}

Status TwoLevelIntervalIndex::InsertAtNode(int32_t idx, const Segment& s) {
  Node& node = nodes_[idx];
  uint32_t first, last;
  if (!TouchedRange(node.boundaries, s, &first, &last)) {
    return Status::Internal("InsertAtNode: segment touches no boundary");
  }
  if (s.is_vertical()) {
    BoundaryStructs& bs = node.per_boundary[first];
    if (!bs.c) bs.c = std::make_unique<pst::PointPst>(pool_, PstOptions());
    return bs.c->Insert(pst::PointRecord{s.y1, s.y2, s.id});
  }
  // A crossing segment can enter up to three structures (L, R, G). On a
  // failure partway through, the halves already applied are rolled back —
  // the rollbacks are pure removals of the just-inserted record, so they
  // cannot themselves hit an injected allocation fault.
  const bool into_l = s.x1 < node.boundaries[first];
  const bool into_r = s.x2 > node.boundaries[last];
  if (into_l) {
    BoundaryStructs& bs = node.per_boundary[first];
    if (!bs.l) {
      bs.l = std::make_unique<pst::LinePst>(
          pool_, node.boundaries[first], pst::Direction::kLeft, PstOptions());
    }
    SEGDB_RETURN_IF_ERROR(bs.l->Insert(s));
  }
  if (into_r) {
    BoundaryStructs& bs = node.per_boundary[last];
    if (!bs.r) {
      bs.r = std::make_unique<pst::LinePst>(
          pool_, node.boundaries[last], pst::Direction::kRight, PstOptions());
    }
    const Status right = bs.r->Insert(s);
    if (!right.ok()) {
      if (into_l) node.per_boundary[first].l->Erase(s).IgnoreError();
      return right;
    }
  }
  if (last > first) {
    if (!node.g) {
      segtree::MultislabOptions g_opts;
      g_opts.fractional_cascading = options_.fractional_cascading;
      g_opts.bridge_d = options_.bridge_d;
      node.g = std::make_unique<segtree::MultislabSegmentTree>(
          pool_, node.boundaries, g_opts);
      const Status built = node.g->Build({});
      if (!built.ok()) {
        node.g.reset();
        if (into_l) node.per_boundary[first].l->Erase(s).IgnoreError();
        if (into_r) node.per_boundary[last].r->Erase(s).IgnoreError();
        return built;
      }
    }
    const Status in_g = node.g->Insert(s);
    if (!in_g.ok()) {
      if (into_l) node.per_boundary[first].l->Erase(s).IgnoreError();
      if (into_r) node.per_boundary[last].r->Erase(s).IgnoreError();
      return in_g;
    }
    if (node.g->NeedsRebuild()) {
      // Amortized repack after the insert committed. Rebuild is atomic
      // (build-aside), so a failure here is absorbed: the delta trigger
      // persists and the next update re-runs it.
      node.g->Rebuild().IgnoreError();
    }
  }
  return Status::OK();
}

Status TwoLevelIntervalIndex::Insert(const Segment& segment) {
  // Amortized O(log_B n) (Theorem 2's update bound): height-bounded
  // descent, plus an occasional subtree rebuild.
  SEGDB_IO_BOUND("scan");
  if (root_ < 0) {
    Result<int32_t> root = BuildSubtree({segment});
    if (!root.ok()) return root.status();
    root_ = root.value();
    ++size_;
    return Status::OK();
  }
  // Bookkeeping (subtree sizes, rebuild counters, size_) is deferred and
  // committed only once the mutation has succeeded, so a faulted insert
  // leaves every counter consistent with what is actually stored.
  std::vector<int32_t> path;
  const auto commit = [&](size_t count) {
    for (size_t i = 0; i < count; ++i) {
      ++nodes_[path[i]].subtree_size;
      ++nodes_[path[i]].inserts_since_rebuild;
    }
    ++size_;
  };
  int32_t cur = root_;
  size_t parent_slot = 0;
  for (;;) {
    path.push_back(cur);
    Node& node = nodes_[cur];

    // Weight-balance by partial rebuilding, checked top-down. A subtree
    // may only rebuild after absorbing a constant fraction of its size in
    // inserts (pays for the rebuild even when balance cannot improve).
    // Counters are compared as-if-incremented so the deferred bookkeeping
    // keeps the rebuild cadence of the original eager code.
    if (!node.is_leaf) {
      uint64_t below = 0, max_child = 0;
      for (int32_t child : node.children) {
        const uint64_t cs = child >= 0 ? nodes_[child].subtree_size : 0;
        below += cs;
        max_child = std::max(max_child, cs);
      }
      const double share = static_cast<double>(below) /
                           static_cast<double>(node.children.size());
      const double limit =
          options_.rebuild_factor * share + LeafCapacity();
      if (below > 2 * static_cast<uint64_t>(LeafCapacity()) &&
          (node.inserts_since_rebuild + 1) * 8 > node.subtree_size + 1 &&
          static_cast<double>(max_child) > limit) {
        std::vector<Segment> all;
        all.reserve(node.subtree_size + 1);
        SEGDB_RETURN_IF_ERROR(CollectSubtree(cur, &all));
        all.push_back(segment);
        // Build the replacement before freeing the old subtree: a failed
        // build leaves the index untouched and the data still stored.
        Result<int32_t> rebuilt = BuildSubtree(std::move(all));
        if (!rebuilt.ok()) return rebuilt.status();
        SEGDB_RETURN_IF_ERROR(FreeSubtree(cur));
        if (path.size() == 1) {
          root_ = rebuilt.value();
        } else {
          nodes_[path[path.size() - 2]].children[parent_slot] =
              rebuilt.value();
        }
        commit(path.size() - 1);  // the rebuilt node restarts its counters
        return Status::OK();
      }
    }

    if (node.is_leaf) {
      node.leaf_segments.push_back(segment);
      if (node.leaf_segments.size() > 2 * LeafCapacity()) {
        // Copy (not move): a failed build must leave the leaf unchanged.
        std::vector<Segment> all = node.leaf_segments;
        Result<int32_t> rebuilt = BuildSubtree(std::move(all));
        if (!rebuilt.ok()) {
          // BuildSubtree may grow nodes_; re-index instead of using `node`.
          nodes_[cur].leaf_segments.pop_back();
          return rebuilt.status();
        }
        SEGDB_RETURN_IF_ERROR(FreeSubtree(cur));
        if (path.size() == 1) {
          root_ = rebuilt.value();
        } else {
          nodes_[path[path.size() - 2]].children[parent_slot] =
              rebuilt.value();
        }
        commit(path.size() - 1);
        return Status::OK();
      }
      const Status written = WriteLeafPages(&node);
      if (!written.ok()) {
        node.leaf_segments.pop_back();
        return written;
      }
      commit(path.size());
      return Status::OK();
    }

    uint32_t first, last;
    if (TouchedRange(node.boundaries, segment, &first, &last)) {
      SEGDB_RETURN_IF_ERROR(InsertAtNode(cur, segment));
      commit(path.size());
      return Status::OK();
    }
    const uint32_t k = static_cast<uint32_t>(
        std::lower_bound(node.boundaries.begin(), node.boundaries.end(),
                         segment.x1) -
        node.boundaries.begin());
    if (node.children[k] < 0) {
      Result<int32_t> fresh = BuildSubtree({segment});
      if (!fresh.ok()) return fresh.status();
      nodes_[cur].children[k] = fresh.value();
      commit(path.size());
      return Status::OK();
    }
    parent_slot = k;
    cur = node.children[k];
  }
}

Status TwoLevelIntervalIndex::Erase(const Segment& segment) {
  SEGDB_IO_BOUND("scan");  // amortized O(log_B n); substructures repack
  std::vector<int32_t> path;
  int32_t cur = root_;
  Status removed = Status::NotFound("segment not stored");
  while (cur >= 0) {
    path.push_back(cur);
    Node& node = nodes_[cur];
    {
      auto meta = pool_->Fetch(node.meta_page);
      if (!meta.ok()) return meta.status();
    }
    if (node.is_leaf) {
      auto it = std::find(node.leaf_segments.begin(),
                          node.leaf_segments.end(), segment);
      if (it == node.leaf_segments.end()) return removed;
      node.leaf_segments.erase(it);
      const Status written = WriteLeafPages(&node);
      if (!written.ok()) {
        // Leaf pages are untouched on failure; restore the in-memory copy
        // (order within a leaf is immaterial).
        node.leaf_segments.push_back(segment);
        return written;
      }
      removed = Status::OK();
      break;
    }
    uint32_t first, last;
    if (!TouchedRange(node.boundaries, segment, &first, &last)) {
      const uint32_t k = static_cast<uint32_t>(
          std::lower_bound(node.boundaries.begin(), node.boundaries.end(),
                           segment.x1) -
          node.boundaries.begin());
      cur = node.children[k];
      continue;
    }
    if (segment.is_vertical()) {
      if (node.per_boundary[first].c == nullptr) return removed;
      SEGDB_RETURN_IF_ERROR(node.per_boundary[first].c->Erase(
          pst::PointRecord{segment.y1, segment.y2, segment.id}));
      removed = Status::OK();
      break;
    }
    // A crossing segment may live in up to three structures (L, R, G). G
    // goes first: its erase is the only one that can allocate (a
    // fractional-cascading tombstone), so once it succeeds the remaining
    // steps' rollbacks are plain LinePst erases that cannot re-fault.
    // Rollbacks reinsert what was already removed so a faulted erase
    // leaves the segment fully stored and retryable.
    bool from_l = false, from_g = false;
    if (last > first) {
      if (node.g == nullptr) return removed;
      SEGDB_RETURN_IF_ERROR(node.g->Erase(segment));
      removed = Status::OK();
      from_g = true;
    }
    if (segment.x1 < node.boundaries[first]) {
      if (node.per_boundary[first].l == nullptr) {
        return removed.ok() ? Status::Corruption("missing L entry") : removed;
      }
      const Status left = node.per_boundary[first].l->Erase(segment);
      if (!left.ok()) {
        if (from_g) node.g->Insert(segment).IgnoreError();
        return left;
      }
      removed = Status::OK();
      from_l = true;
    }
    if (segment.x2 > node.boundaries[last]) {
      if (node.per_boundary[last].r == nullptr) {
        return removed.ok() ? Status::Corruption("missing R entry") : removed;
      }
      const Status right = node.per_boundary[last].r->Erase(segment);
      if (!right.ok()) {
        if (from_l) node.per_boundary[first].l->Insert(segment).IgnoreError();
        if (from_g) node.g->Insert(segment).IgnoreError();
        return right;
      }
      removed = Status::OK();
    }
    // Amortized repack of G: absorb a failure here — the erase itself has
    // committed, and the rebuild trigger persists until a later op retries.
    if (from_g && node.g->NeedsRebuild()) node.g->Rebuild().IgnoreError();
    break;
  }
  if (!removed.ok()) return removed;
  for (int32_t idx : path) --nodes_[idx].subtree_size;
  --size_;
  return Status::OK();
}

Status TwoLevelIntervalIndex::Query(const VerticalSegmentQuery& q,
                                    std::vector<Segment>* out) const {
  // Theorem 2: O(log_B n + sqrt(n/B) + t/B) I/Os — the sqrt term is the
  // multislab sweep at each visited interval-tree node.
  SEGDB_IO_BOUND("log", "sqrt", "t/B");
  if (q.ylo > q.yhi) return Status::InvalidArgument("ylo > yhi");
  int32_t cur = root_;
  std::vector<io::PageId> ahead;  // read-ahead hint for the next descent step
  while (cur >= 0) {
    const Node& node = nodes_[cur];
    {
      auto meta = pool_->Fetch(node.meta_page);
      if (!meta.ok()) return meta.status();
    }
    if (node.is_leaf) {
      for (io::PageId id : node.leaf_pages) {
        auto ref = pool_->Fetch(id);
        if (!ref.ok()) return ref.status();
        const io::Page& p = ref.value().page();
        const uint32_t count = p.ReadAt<uint32_t>(0);
        // Kernel filter + one bulk gather per page (see Solution A).
        const io::ConstColumnarPageView view(p, kLeafHeader, count);
        geom::ResultBuffer& scratch = geom::GetThreadFilterScratch();
        uint32_t* idx = scratch.ReserveIndices(count);
        const uint32_t hits = geom::ActiveFilterKernel().filter_vs(
            view.strips(), count, q.x0, q.ylo, q.yhi, idx);
        view.AppendMatches(idx, hits, out);
      }
      return Status::OK();
    }

    auto it = std::lower_bound(node.boundaries.begin(), node.boundaries.end(),
                               q.x0);
    const bool on_boundary =
        it != node.boundaries.end() && *it == q.x0;
    const uint32_t k =
        static_cast<uint32_t>(it - node.boundaries.begin());

    if (on_boundary) {
      // x0 == s_k: C_k, L_k, R_k and G, then stop (nothing deeper can
      // touch a boundary line).
      const BoundaryStructs& bs = node.per_boundary[k];
      if (bs.c) {
        std::vector<pst::PointRecord> points;
        SEGDB_RETURN_IF_ERROR(bs.c->Query3Sided(-(geom::kMaxCoord + 1),
                                                q.yhi, q.ylo, &points));
        for (const auto& p : points) {
          out->push_back(Segment::Make({q.x0, p.x}, {q.x0, p.y}, p.id));
        }
      }
      if (bs.l) {
        // L_k members have first crossed boundary s_k; those that also
        // cross s_{k+1} have a long part covering s_k and are reported by
        // G — keep only the ones G cannot see.
        std::vector<Segment> ls;
        SEGDB_RETURN_IF_ERROR(bs.l->Query(q.x0, q.ylo, q.yhi, &ls));
        for (const Segment& s : ls) {
          if (k + 1 >= node.boundaries.size() ||
              s.x2 < node.boundaries[k + 1]) {
            out->push_back(s);
          }
        }
      }
      if (bs.r) {
        // R_k members have last crossed boundary s_k. Keep only those
        // whose first crossed boundary is also s_k (x1 == s_k): members
        // with an earlier crossing have a long part covering s_k (G
        // reports them), and x1 < s_k overlaps L_k's answers.
        std::vector<Segment> rs;
        SEGDB_RETURN_IF_ERROR(bs.r->Query(q.x0, q.ylo, q.yhi, &rs));
        for (const Segment& s : rs) {
          if (s.x1 == q.x0) out->push_back(s);
        }
      }
      if (node.g) SEGDB_RETURN_IF_ERROR(node.g->Query(q.x0, q.ylo, q.yhi, out));
      return Status::OK();
    }

    // x0 inside slab k: R_{k-1}, L_k and G cover the node's segments
    // disjointly (see header).
    if (k >= 1) {
      const BoundaryStructs& bs = node.per_boundary[k - 1];
      if (bs.r) SEGDB_RETURN_IF_ERROR(bs.r->Query(q.x0, q.ylo, q.yhi, out));
    }
    if (k < node.boundaries.size()) {
      const BoundaryStructs& bs = node.per_boundary[k];
      if (bs.l) SEGDB_RETURN_IF_ERROR(bs.l->Query(q.x0, q.ylo, q.yhi, out));
    }
    if (node.g) SEGDB_RETURN_IF_ERROR(node.g->Query(q.x0, q.ylo, q.yhi, out));
    cur = node.children[k];
    if (cur >= 0) {
      // Hint the child slab's pages before this node's PSTs and G are
      // searched; staged pages are charged on first Fetch, so I/O counts
      // stay exact.
      const Node& next = nodes_[cur];
      ahead.clear();
      ahead.push_back(next.meta_page);
      if (next.is_leaf) {
        ahead.insert(ahead.end(), next.leaf_pages.begin(),
                     next.leaf_pages.end());
      }
      pool_->Prefetch(ahead);
    }
  }
  return Status::OK();
}

uint64_t TwoLevelIntervalIndex::page_count() const {
  uint64_t total = 0;
  std::vector<int32_t> stack;
  if (root_ >= 0) stack.push_back(root_);
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    total += 1 + node.leaf_pages.size();
    for (const BoundaryStructs& bs : node.per_boundary) {
      if (bs.c) total += bs.c->page_count();
      if (bs.l) total += bs.l->page_count();
      if (bs.r) total += bs.r->page_count();
    }
    if (node.g) total += node.g->page_count();
    for (int32_t child : node.children) {
      if (child >= 0) stack.push_back(child);
    }
  }
  return total;
}

uint32_t TwoLevelIntervalIndex::SubtreeHeight(int32_t idx) const {
  if (idx < 0) return 0;
  const Node& node = nodes_[idx];
  uint32_t h = 0;
  for (int32_t child : node.children) {
    h = std::max(h, SubtreeHeight(child));
  }
  return 1 + h;
}

uint32_t TwoLevelIntervalIndex::height() const {
  return SubtreeHeight(root_);
}

Status TwoLevelIntervalIndex::CheckSubtree(int32_t idx, const int64_t* lo,
                                           const int64_t* hi,
                                           uint64_t* total) const {
  const Node& node = nodes_[idx];
  uint64_t count = 0;
  if (node.is_leaf) {
    count = node.leaf_segments.size();
    for (const Segment& s : node.leaf_segments) {
      if ((lo != nullptr && s.x1 <= *lo) || (hi != nullptr && s.x2 >= *hi)) {
        return Status::Corruption("leaf segment escapes its slab");
      }
    }
  } else {
    // Fan-out b = B/4 slab coverage: at most b strictly-increasing
    // boundaries, one C/L/R triple per boundary and one child per slab.
    if (node.boundaries.empty() || node.boundaries.size() > fanout_) {
      return Status::Corruption("boundary count outside [1, b]");
    }
    if (node.per_boundary.size() != node.boundaries.size() ||
        node.children.size() != node.boundaries.size() + 1) {
      return Status::Corruption("per-boundary structures misaligned");
    }
    for (size_t i = 0; i < node.boundaries.size(); ++i) {
      if (i > 0 && node.boundaries[i - 1] >= node.boundaries[i]) {
        return Status::Corruption("boundaries not strictly increasing");
      }
      if ((lo != nullptr && node.boundaries[i] <= *lo) ||
          (hi != nullptr && node.boundaries[i] >= *hi)) {
        return Status::Corruption("boundary outside ancestor slab");
      }
      const BoundaryStructs& bs = node.per_boundary[i];
      if (bs.c) SEGDB_RETURN_IF_ERROR(bs.c->CheckInvariants());
      if (bs.l) SEGDB_RETURN_IF_ERROR(bs.l->CheckInvariants());
      if (bs.r) SEGDB_RETURN_IF_ERROR(bs.r->CheckInvariants());
    }
    if (node.g) SEGDB_RETURN_IF_ERROR(node.g->CheckInvariants());
    {
      std::unordered_set<uint64_t> seen;
      // Re-derive every stored segment's routing and confirm it sits in
      // exactly the collections InsertAtNode would choose.
      uint32_t first, last;
      for (size_t i = 0; i < node.per_boundary.size(); ++i) {
        const BoundaryStructs& bs = node.per_boundary[i];
        if (bs.c) {
          std::vector<pst::PointRecord> points;
          SEGDB_RETURN_IF_ERROR(bs.c->CollectAll(&points));
          for (const auto& p : points) {
            if (p.x > p.y) {
              return Status::Corruption("C_i interval with lo > hi");
            }
          }
          count += bs.c->size();
        }
        if (bs.l) {
          std::vector<Segment> tmp;
          SEGDB_RETURN_IF_ERROR(bs.l->CollectAll(&tmp));
          for (const Segment& s : tmp) {
            if (!TouchedRange(node.boundaries, s, &first, &last) ||
                first != i || s.x1 >= node.boundaries[i]) {
              return Status::Corruption(
                  "L_i member whose first crossed boundary is not s_i");
            }
            if ((lo != nullptr && s.x1 <= *lo) ||
                (hi != nullptr && s.x2 >= *hi)) {
              return Status::Corruption("L_i member escapes the ancestor slab");
            }
            seen.insert(s.id);
          }
        }
        if (bs.r) {
          std::vector<Segment> tmp;
          SEGDB_RETURN_IF_ERROR(bs.r->CollectAll(&tmp));
          for (const Segment& s : tmp) {
            if (!TouchedRange(node.boundaries, s, &first, &last) ||
                last != i || s.x2 <= node.boundaries[i]) {
              return Status::Corruption(
                  "R_i member whose last crossed boundary is not s_i");
            }
            if ((lo != nullptr && s.x1 <= *lo) ||
                (hi != nullptr && s.x2 >= *hi)) {
              return Status::Corruption("R_i member escapes the ancestor slab");
            }
            seen.insert(s.id);
          }
        }
      }
      if (node.g) {
        std::vector<Segment> tmp;
        SEGDB_RETURN_IF_ERROR(node.g->CollectAll(&tmp));
        for (const Segment& s : tmp) {
          if (!TouchedRange(node.boundaries, s, &first, &last) ||
              last <= first) {
            return Status::Corruption(
                "G member crossing fewer than two boundaries");
          }
          seen.insert(s.id);
        }
      }
      count += seen.size();
    }
    for (size_t k = 0; k < node.children.size(); ++k) {
      if (node.children[k] < 0) continue;
      const int64_t* clo = k == 0 ? lo : &node.boundaries[k - 1];
      const int64_t* chi =
          k == node.boundaries.size() ? hi : &node.boundaries[k];
      uint64_t sub = 0;
      SEGDB_RETURN_IF_ERROR(CheckSubtree(node.children[k], clo, chi, &sub));
      count += sub;
    }
  }
  if (count != node.subtree_size) {
    return Status::Corruption("subtree_size bookkeeping mismatch");
  }
  *total = count;
  return Status::OK();
}

Status TwoLevelIntervalIndex::CheckInvariants() const {
  if (root_ < 0) {
    return size_ == 0 ? Status::OK() : Status::Corruption("size_ mismatch");
  }
  uint64_t total = 0;
  SEGDB_RETURN_IF_ERROR(CheckSubtree(root_, nullptr, nullptr, &total));
  if (total != size_) return Status::Corruption("size_ mismatch");
  return Status::OK();
}

}  // namespace segdb::core
