// The public query interface of segdb: generalized vertical-segment (VS)
// queries over an NCT segment database, as defined in the paper's
// introduction. Both two-level data structures (Sections 3 and 4) and all
// baselines implement this interface, so experiments and examples swap
// implementations freely.
#ifndef SEGDB_CORE_SEGMENT_INDEX_H_
#define SEGDB_CORE_SEGMENT_INDEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "geom/segment.h"
#include "util/check.h"
#include "util/status.h"

namespace segdb::core {

// A generalized vertical query segment x = x0, ylo <= y <= yhi. Rays and
// lines are expressed through the factories below (coordinates are bounded
// by geom::kMaxCoord, so the sentinels cover every dataset). Non-vertical
// fixed-direction queries are handled by rotating the data at load time
// (paper, footnote 1).
struct VerticalSegmentQuery {
  int64_t x0 = 0;
  int64_t ylo = 0;
  int64_t yhi = 0;

  static VerticalSegmentQuery Segment(int64_t x0, int64_t ylo, int64_t yhi) {
    return {x0, ylo, yhi};
  }
  static VerticalSegmentQuery UpRay(int64_t x0, int64_t ylo) {
    return {x0, ylo, geom::kMaxCoord + 1};
  }
  static VerticalSegmentQuery DownRay(int64_t x0, int64_t yhi) {
    return {x0, -(geom::kMaxCoord + 1), yhi};
  }
  static VerticalSegmentQuery Line(int64_t x0) {
    return {x0, -(geom::kMaxCoord + 1), geom::kMaxCoord + 1};
  }
};

// Interface implemented by the paper's structures and the baselines.
class SegmentIndex {
 public:
  virtual ~SegmentIndex() = default;

  // Replaces the contents with an NCT segment set (static build).
  virtual Status BulkLoad(std::span<const geom::Segment> segments) = 0;

  // Semi-dynamic insertion: the new segment must not properly cross any
  // stored segment.
  virtual Status Insert(const geom::Segment& segment) = 0;

  // Deletion of a stored segment (matched by id and coordinates). The
  // paper's Theorem 1 supports full updates; structures without a
  // deletion path keep the default.
  virtual Status Erase(const geom::Segment& /*segment*/) {
    SEGDB_IO_BOUND("1");  // the default does no I/O at all
    return Status::Unimplemented(name() + " does not support deletion");
  }

  // Appends every stored segment intersecting the query to *out.
  virtual Status Query(const VerticalSegmentQuery& query,
                       std::vector<geom::Segment>* out) const = 0;

  virtual uint64_t size() const = 0;

  // Disk pages currently owned (space experiments).
  virtual uint64_t page_count() const = 0;

  virtual std::string name() const = 0;

  // Audits the structure's internal invariants (shape, routing, size
  // bookkeeping), returning Corruption with a diagnostic on the first
  // violation. O(n) or worse — a test/debugging hook, not a query-path
  // operation. Structures without internal state keep the default.
  virtual Status CheckInvariants() const { return Status::OK(); }
};

}  // namespace segdb::core

#endif  // SEGDB_CORE_SEGMENT_INDEX_H_
