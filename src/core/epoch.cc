#include "core/epoch.h"

namespace segdb::core {

void EpochManager::AdvanceAndWait() {
  util::MutexLock lock(&mu_);
  const uint64_t retired = epoch_.fetch_add(1, std::memory_order_acq_rel);
  std::atomic<uint64_t>& slot = slots_[retired % kSlots];
  // Readers racing Pin() against the advance may transiently bump the
  // retired slot before their recheck sends them to the new epoch, so the
  // count can wiggle — but every increment is followed by a decrement
  // (either the recheck-retry or the guard release), so the drain
  // terminates. Pure spin: drains are bounded by in-flight queries, which
  // never block, and src/core stays out of the raw-time business.
  while (slot.load(std::memory_order_acquire) != 0) {
  }
}

}  // namespace segdb::core
