#include "core/validate.h"

#include <cstdlib>
#include <string>
#include <unordered_set>

#include "geom/sweep.h"

namespace segdb::core {

Status ValidateForIndexing(std::span<const geom::Segment> segments) {
  std::unordered_set<uint64_t> ids;
  ids.reserve(segments.size());
  for (const geom::Segment& s : segments) {
    if (s.x1 > s.x2 || (s.x1 == s.x2 && s.y1 > s.y2)) {
      return Status::InvalidArgument("segment " + std::to_string(s.id) +
                                     " is not in canonical form (use "
                                     "Segment::Make)");
    }
    if (std::abs(s.x1) > geom::kMaxCoord || std::abs(s.x2) > geom::kMaxCoord ||
        std::abs(s.y1) > geom::kMaxCoord || std::abs(s.y2) > geom::kMaxCoord) {
      return Status::InvalidArgument("segment " + std::to_string(s.id) +
                                     " exceeds the coordinate bound");
    }
    if (!ids.insert(s.id).second) {
      return Status::InvalidArgument("duplicate segment id " +
                                     std::to_string(s.id));
    }
  }
  return geom::ValidateNctSweep(segments);
}

}  // namespace segdb::core
