#include "core/two_level_binary_index.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "geom/filter_kernel.h"
#include "geom/predicates.h"
#include "io/columnar_page_view.h"
#include "util/check.h"

namespace segdb::core {

namespace {

using geom::Segment;

// Leaf page layout: [u32 count][Segment x count].
constexpr uint32_t kLeafHeader = 8;

// Routing classes of a segment relative to a base line x = blx.
enum class Route { kOnLine, kCrossing, kLeft, kRight };

Route Classify(const Segment& s, int64_t blx) {
  if (s.x2 < blx) return Route::kLeft;
  if (s.x1 > blx) return Route::kRight;
  if (s.is_vertical()) return Route::kOnLine;  // x1 == x2 == blx here
  return Route::kCrossing;
}

}  // namespace

TwoLevelBinaryIndex::TwoLevelBinaryIndex(io::BufferPool* pool,
                                         TwoLevelBinaryOptions options)
    : pool_(pool), options_(options) {}

TwoLevelBinaryIndex::~TwoLevelBinaryIndex() {
  if (root_ >= 0) FreeSubtree(root_).IgnoreError();
}

uint32_t TwoLevelBinaryIndex::LeafCapacity() const {
  if (options_.leaf_capacity != 0) return options_.leaf_capacity;
  return io::ColumnarRegionCapacity(pool_->page_size() - kLeafHeader);
}

pst::LinePstOptions TwoLevelBinaryIndex::PstOptions() const {
  pst::LinePstOptions o;
  o.fanout = options_.pst_fanout;
  return o;
}

Status TwoLevelBinaryIndex::WriteLeafPages(Node* node) {
  // Allocate-then-swap: the replacement pages are fully materialized before
  // the old ones are freed, so a failed allocation mid-way (e.g. an
  // injected fault) releases the partial batch and leaves the node's pages
  // — and hence every query — exactly as they were. The old free-first
  // order silently truncated query results after a mid-write failure.
  const uint32_t per_page =
      std::min(LeafCapacity(),
               io::ColumnarRegionCapacity(pool_->page_size() - kLeafHeader));
  std::vector<io::PageId> fresh;
  size_t i = 0;
  while (i < node->leaf_segments.size()) {
    const uint32_t take = static_cast<uint32_t>(
        std::min<size_t>(per_page, node->leaf_segments.size() - i));
    auto ref = pool_->NewPage();
    if (!ref.ok()) {
      for (io::PageId id : fresh) pool_->FreePage(id).IgnoreError();
      return ref.status();
    }
    io::Page& p = ref.value().page();
    p.WriteAt<uint32_t>(0, take);
    // Columnar strips sized to the record count; large runs bit-pack below
    // the row-major footprint, which is where the higher per_page comes from.
    io::ColumnarPageView(&p, kLeafHeader, take)
        .WriteRange(0, node->leaf_segments.data() + i, take);
    ref.value().MarkDirty();
    fresh.push_back(ref.value().page_id());
    i += take;
  }
  for (io::PageId id : node->leaf_pages) {
    SEGDB_RETURN_IF_ERROR(pool_->FreePage(id));  // reliable metadata op
  }
  node->leaf_pages = std::move(fresh);
  return Status::OK();
}

int32_t TwoLevelBinaryIndex::AllocNode() {
  int32_t idx;
  if (!free_nodes_.empty()) {
    idx = free_nodes_.back();
    free_nodes_.pop_back();
    nodes_[idx] = Node{};
  } else {
    idx = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  return idx;
}

Result<int32_t> TwoLevelBinaryIndex::BuildSubtree(
    std::vector<Segment> segments) {
  SEGDB_DCHECK(!segments.empty());
  const int32_t idx = AllocNode();
  Status built = BuildSubtreeAt(idx, std::move(segments));
  if (!built.ok()) {
    // Unwind the partial build: FreeSubtree releases exactly what was
    // attached before the failure (children recurse, unset fields are
    // skipped). FreePage is reliable, and the PSTs keep their shape in
    // memory, so the unwind itself cannot fault on the simulated device.
    FreeSubtree(idx).IgnoreError();
    return built;
  }
  return idx;
}

Status TwoLevelBinaryIndex::BuildSubtreeAt(int32_t idx,
                                           std::vector<Segment> segments) {
  {
    auto meta = pool_->NewPage();
    if (!meta.ok()) return meta.status();
    meta.value().MarkDirty();
    nodes_[idx].meta_page = meta.value().page_id();
  }
  nodes_[idx].subtree_size = segments.size();

  if (segments.size() <= LeafCapacity()) {
    nodes_[idx].is_leaf = true;
    nodes_[idx].leaf_segments = std::move(segments);
    return WriteLeafPages(&nodes_[idx]);
  }

  // Median endpoint x as the base line (paper: the vertical line splitting
  // the endpoint multiset in half; guarantees each side receives at most
  // half the segments).
  std::vector<int64_t> xs;
  xs.reserve(2 * segments.size());
  for (const Segment& s : segments) {
    xs.push_back(s.x1);
    xs.push_back(s.x2);
  }
  const size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
  const int64_t blx = xs[mid];
  nodes_[idx].is_leaf = false;
  nodes_[idx].bl_x = blx;

  std::vector<Segment> on_line, crossing, left, right;
  for (const Segment& s : segments) {
    switch (Classify(s, blx)) {
      case Route::kOnLine: on_line.push_back(s); break;
      case Route::kCrossing: crossing.push_back(s); break;
      case Route::kLeft: left.push_back(s); break;
      case Route::kRight: right.push_back(s); break;
    }
  }
  segments.clear();
  SEGDB_DCHECK(left.size() < nodes_[idx].subtree_size);
  SEGDB_DCHECK(right.size() < nodes_[idx].subtree_size);

  if (!on_line.empty()) {
    std::vector<pst::PointRecord> points;
    points.reserve(on_line.size());
    for (const Segment& s : on_line) {
      points.push_back(pst::PointRecord{s.y1, s.y2, s.id});
    }
    // Attach before loading: if the load faults mid-way, FreeSubtree's
    // unwind reaches the PST and Clear()s whatever it managed to build.
    nodes_[idx].c = std::make_unique<pst::PointPst>(pool_, PstOptions());
    SEGDB_RETURN_IF_ERROR(nodes_[idx].c->BulkLoad(points));
  }
  std::vector<Segment> lefts, rights;
  for (const Segment& s : crossing) {
    if (s.x1 < blx) lefts.push_back(s);   // non-degenerate left part
    if (s.x2 > blx) rights.push_back(s);  // non-degenerate right part
  }
  if (!lefts.empty()) {
    nodes_[idx].l = std::make_unique<pst::LinePst>(
        pool_, blx, pst::Direction::kLeft, PstOptions());
    SEGDB_RETURN_IF_ERROR(nodes_[idx].l->BulkLoad(lefts));
  }
  if (!rights.empty()) {
    nodes_[idx].r = std::make_unique<pst::LinePst>(
        pool_, blx, pst::Direction::kRight, PstOptions());
    SEGDB_RETURN_IF_ERROR(nodes_[idx].r->BulkLoad(rights));
  }
  if (!left.empty()) {
    Result<int32_t> child = BuildSubtree(std::move(left));
    if (!child.ok()) return child.status();
    nodes_[idx].left = child.value();
  }
  if (!right.empty()) {
    Result<int32_t> child = BuildSubtree(std::move(right));
    if (!child.ok()) return child.status();
    nodes_[idx].right = child.value();
  }
  return Status::OK();
}

Status TwoLevelBinaryIndex::FreeSubtree(int32_t idx) {
  Node& node = nodes_[idx];
  if (node.left >= 0) SEGDB_RETURN_IF_ERROR(FreeSubtree(node.left));
  if (node.right >= 0) SEGDB_RETURN_IF_ERROR(FreeSubtree(node.right));
  if (node.c) SEGDB_RETURN_IF_ERROR(node.c->Clear());
  if (node.l) SEGDB_RETURN_IF_ERROR(node.l->Clear());
  if (node.r) SEGDB_RETURN_IF_ERROR(node.r->Clear());
  for (io::PageId id : node.leaf_pages) {
    SEGDB_RETURN_IF_ERROR(pool_->FreePage(id));
  }
  if (node.meta_page != io::kInvalidPageId) {
    SEGDB_RETURN_IF_ERROR(pool_->FreePage(node.meta_page));
  }
  nodes_[idx] = Node{};
  free_nodes_.push_back(idx);
  return Status::OK();
}

Status TwoLevelBinaryIndex::CollectSubtree(int32_t idx,
                                           std::vector<Segment>* out) const {
  const Node& node = nodes_[idx];
  if (node.is_leaf) {
    out->insert(out->end(), node.leaf_segments.begin(),
                node.leaf_segments.end());
    return Status::OK();
  }
  if (node.c) {
    std::vector<pst::PointRecord> points;
    SEGDB_RETURN_IF_ERROR(node.c->CollectAll(&points));
    for (const auto& p : points) {
      out->push_back(Segment::Make({node.bl_x, p.x}, {node.bl_x, p.y}, p.id));
    }
  }
  // Crossing segments live in L and/or R; collect without duplicates:
  // everything in L, plus R entries whose left part is degenerate.
  if (node.l) SEGDB_RETURN_IF_ERROR(node.l->CollectAll(out));
  if (node.r) {
    std::vector<Segment> rs;
    SEGDB_RETURN_IF_ERROR(node.r->CollectAll(&rs));
    for (const Segment& s : rs) {
      if (s.x1 == node.bl_x) out->push_back(s);
    }
  }
  if (node.left >= 0) SEGDB_RETURN_IF_ERROR(CollectSubtree(node.left, out));
  if (node.right >= 0) SEGDB_RETURN_IF_ERROR(CollectSubtree(node.right, out));
  return Status::OK();
}

Status TwoLevelBinaryIndex::BulkLoad(std::span<const Segment> segments) {
  SEGDB_IO_BOUND("scan");
  // Build the replacement tree before freeing the old one: a load that
  // faults mid-build leaves the previous contents fully intact (the
  // partial build unwinds itself), so a failed BulkLoad is a no-op.
  int32_t new_root = -1;
  if (!segments.empty()) {
    Result<int32_t> root =
        BuildSubtree(std::vector<Segment>(segments.begin(), segments.end()));
    if (!root.ok()) return root.status();
    new_root = root.value();
  }
  if (root_ >= 0) SEGDB_RETURN_IF_ERROR(FreeSubtree(root_));
  root_ = new_root;
  size_ = segments.size();
  return Status::OK();
}

Status TwoLevelBinaryIndex::InsertAtNode(int32_t idx, const Segment& s) {
  Node& node = nodes_[idx];
  switch (Classify(s, node.bl_x)) {
    case Route::kOnLine: {
      if (!node.c) node.c = std::make_unique<pst::PointPst>(pool_, PstOptions());
      return node.c->Insert(pst::PointRecord{s.y1, s.y2, s.id});
    }
    case Route::kCrossing: {
      // A segment crossing on both sides must land in L and R together or
      // not at all — the audit matches the two by id. If the second insert
      // faults, roll the first one back (pure removal, no allocation, so
      // the rollback cannot itself fault on the simulated device).
      const bool into_l = s.x1 < node.bl_x;
      const bool into_r = s.x2 > node.bl_x;
      if (into_l) {
        if (!node.l) {
          node.l = std::make_unique<pst::LinePst>(
              pool_, node.bl_x, pst::Direction::kLeft, PstOptions());
        }
        SEGDB_RETURN_IF_ERROR(node.l->Insert(s));
      }
      if (into_r) {
        if (!node.r) {
          node.r = std::make_unique<pst::LinePst>(
              pool_, node.bl_x, pst::Direction::kRight, PstOptions());
        }
        Status right = node.r->Insert(s);
        if (!right.ok()) {
          if (into_l) node.l->Erase(s).IgnoreError();
          return right;
        }
      }
      return Status::OK();
    }
    default:
      return Status::Internal("InsertAtNode: segment does not touch bl(v)");
  }
}

Status TwoLevelBinaryIndex::Insert(const Segment& segment) {
  // Amortized O(log_B n) (Theorem 1's update bound): height-bounded
  // descent into per-node PSTs, plus an occasional subtree rebuild.
  SEGDB_IO_BOUND("scan");
  // Bookkeeping is deferred: size_ and the per-node subtree_size /
  // updates_since_rebuild counters along the descent path are committed
  // only once the structural work has succeeded. A faulted insert thus
  // leaves the index exactly as it was — audit-clean and retryable —
  // instead of stranding phantom counts the audit would flag.
  if (root_ < 0) {
    Result<int32_t> root = BuildSubtree({segment});
    if (!root.ok()) return root.status();
    root_ = root.value();
    ++size_;
    return Status::OK();
  }
  std::vector<int32_t> path;  // nodes whose subtree gains the segment
  // Commits the deferred counters for the first `count` path nodes.
  const auto commit = [&](size_t count) {
    for (size_t i = 0; i < count; ++i) {
      Node& n = nodes_[path[i]];
      ++n.subtree_size;
      ++n.updates_since_rebuild;
    }
    ++size_;
  };
  int32_t cur = root_;
  int32_t parent = -1;
  bool parent_left = false;
  for (;;) {
    path.push_back(cur);
    Node& node = nodes_[cur];

    // BB[alpha]-style partial rebuilding, checked top-down; the
    // updates_since_rebuild guard keeps rebuilds amortized. The counters
    // are evaluated as if this insert were already counted (the pre-fault
    // code incremented on the way down), so the rebuild cadence is
    // unchanged.
    const uint64_t ls =
        node.left >= 0 ? nodes_[node.left].subtree_size : 0;
    const uint64_t rs =
        node.right >= 0 ? nodes_[node.right].subtree_size : 0;
    const uint64_t below = ls + rs;
    const double limit =
        options_.rebuild_fraction * static_cast<double>(below) +
        LeafCapacity();
    if (below > 2 * static_cast<uint64_t>(LeafCapacity()) &&
        (node.updates_since_rebuild + 1) * 8 > node.subtree_size + 1 &&
        (static_cast<double>(ls) > limit ||
         static_cast<double>(rs) > limit)) {
      std::vector<Segment> all;
      all.reserve(node.subtree_size + 1);
      SEGDB_RETURN_IF_ERROR(CollectSubtree(cur, &all));
      all.push_back(segment);
      // Build the replacement before freeing the old subtree: a faulted
      // rebuild unwinds itself and the insert fails as a clean no-op.
      Result<int32_t> rebuilt = BuildSubtree(std::move(all));
      if (!rebuilt.ok()) return rebuilt.status();
      SEGDB_RETURN_IF_ERROR(FreeSubtree(cur));
      if (parent < 0) {
        root_ = rebuilt.value();
      } else if (parent_left) {
        nodes_[parent].left = rebuilt.value();
      } else {
        nodes_[parent].right = rebuilt.value();
      }
      commit(path.size() - 1);  // cur was replaced; its count is built in
      return Status::OK();
    }

    if (node.is_leaf) {
      node.leaf_segments.push_back(segment);
      if (node.leaf_segments.size() > 2 * LeafCapacity()) {
        // Split the leaf by rebuilding it as a (small) subtree. Copy the
        // segments: on a faulted build the pushed entry is popped and the
        // leaf (pages untouched) reverts to its pre-insert state.
        std::vector<Segment> all = node.leaf_segments;
        Result<int32_t> rebuilt = BuildSubtree(std::move(all));
        if (!rebuilt.ok()) {
          nodes_[cur].leaf_segments.pop_back();
          return rebuilt.status();
        }
        SEGDB_RETURN_IF_ERROR(FreeSubtree(cur));
        if (parent < 0) {
          root_ = rebuilt.value();
        } else if (parent_left) {
          nodes_[parent].left = rebuilt.value();
        } else {
          nodes_[parent].right = rebuilt.value();
        }
        commit(path.size() - 1);
        return Status::OK();
      }
      Status written = WriteLeafPages(&node);
      if (!written.ok()) {
        node.leaf_segments.pop_back();
        return written;
      }
      commit(path.size());
      return Status::OK();
    }

    const Route route = Classify(segment, node.bl_x);
    if (route == Route::kOnLine || route == Route::kCrossing) {
      SEGDB_RETURN_IF_ERROR(InsertAtNode(cur, segment));
      commit(path.size());
      return Status::OK();
    }
    const bool go_left = route == Route::kLeft;
    int32_t child = go_left ? node.left : node.right;
    if (child < 0) {
      Result<int32_t> fresh = BuildSubtree({segment});
      if (!fresh.ok()) return fresh.status();
      if (go_left) {
        nodes_[cur].left = fresh.value();
      } else {
        nodes_[cur].right = fresh.value();
      }
      commit(path.size());
      return Status::OK();
    }
    parent = cur;
    parent_left = go_left;
    cur = child;
  }
}

Status TwoLevelBinaryIndex::Erase(const Segment& segment) {
  SEGDB_IO_BOUND("scan");  // amortized O(log_B n); the PSTs may repack
  // Pass 1: locate and remove from the owning structure (no bookkeeping
  // yet, so a NotFound leaves the index untouched).
  std::vector<int32_t> path;
  int32_t cur = root_;
  Status removed = Status::NotFound("segment not stored");
  while (cur >= 0) {
    path.push_back(cur);
    Node& node = nodes_[cur];
    {
      auto meta = pool_->Fetch(node.meta_page);
      if (!meta.ok()) return meta.status();
    }
    if (node.is_leaf) {
      auto it = std::find(node.leaf_segments.begin(),
                          node.leaf_segments.end(), segment);
      if (it == node.leaf_segments.end()) return removed;
      node.leaf_segments.erase(it);
      Status written = WriteLeafPages(&node);
      if (!written.ok()) {
        // Pages are untouched on failure; restore the mirror (leaf order
        // is immaterial) so the failed erase is a no-op.
        node.leaf_segments.push_back(segment);
        return written;
      }
      removed = Status::OK();
      break;
    }
    const Route route = Classify(segment, node.bl_x);
    if (route == Route::kOnLine) {
      if (node.c == nullptr) return removed;
      SEGDB_RETURN_IF_ERROR(
          node.c->Erase(pst::PointRecord{segment.y1, segment.y2, segment.id}));
      removed = Status::OK();
      break;
    }
    if (route == Route::kCrossing) {
      const bool from_l = segment.x1 < node.bl_x;
      if (from_l) {
        if (node.l == nullptr) return removed;
        SEGDB_RETURN_IF_ERROR(node.l->Erase(segment));
        removed = Status::OK();
      }
      if (segment.x2 > node.bl_x) {
        if (node.r == nullptr) {
          return removed.ok()
                     ? Status::Corruption("crossing segment missing in R")
                     : removed;
        }
        Status right = node.r->Erase(segment);
        if (!right.ok()) {
          // Keep L and R mirrored (the audit matches them by id): undo the
          // L-side removal before surfacing the failure.
          if (from_l) node.l->Insert(segment).IgnoreError();
          return right;
        }
        removed = Status::OK();
      }
      break;
    }
    cur = route == Route::kLeft ? node.left : node.right;
  }
  if (!removed.ok()) return removed;
  for (int32_t idx : path) {
    --nodes_[idx].subtree_size;
    // Erases count toward the rebuild amortization too: they loosen the
    // audited balance bound by exactly the slack they add here.
    ++nodes_[idx].updates_since_rebuild;
  }
  --size_;
  return Status::OK();
}

Status TwoLevelBinaryIndex::QueryNode(const Node& node,
                                      const VerticalSegmentQuery& q,
                                      std::vector<Segment>* out) const {
  if (q.x0 == node.bl_x) {
    if (node.c) {
      std::vector<pst::PointRecord> points;
      SEGDB_RETURN_IF_ERROR(node.c->Query3Sided(
          -(geom::kMaxCoord + 1), q.yhi, q.ylo, &points));
      for (const auto& p : points) {
        out->push_back(
            Segment::Make({node.bl_x, p.x}, {node.bl_x, p.y}, p.id));
      }
    }
    if (node.l) SEGDB_RETURN_IF_ERROR(node.l->Query(q.x0, q.ylo, q.yhi, out));
    if (node.r) {
      // L already reported every segment with x1 < bl(v); R adds only the
      // ones whose left part is degenerate.
      std::vector<Segment> rs;
      SEGDB_RETURN_IF_ERROR(node.r->Query(q.x0, q.ylo, q.yhi, &rs));
      for (const Segment& s : rs) {
        if (s.x1 == node.bl_x) out->push_back(s);
      }
    }
    return Status::OK();
  }
  if (q.x0 < node.bl_x) {
    if (node.l) return node.l->Query(q.x0, q.ylo, q.yhi, out);
    return Status::OK();
  }
  if (node.r) return node.r->Query(q.x0, q.ylo, q.yhi, out);
  return Status::OK();
}

Status TwoLevelBinaryIndex::Query(const VerticalSegmentQuery& q,
                                  std::vector<Segment>* out) const {
  // Theorem 1: O(log_B n + t/B) I/Os — a height-bounded descent with
  // O(1 + t_v/B) PST queries per visited node.
  SEGDB_IO_BOUND("log", "t/B");
  if (q.ylo > q.yhi) return Status::InvalidArgument("ylo > yhi");
  int32_t cur = root_;
  std::vector<io::PageId> ahead;  // read-ahead hint for the next descent step
  while (cur >= 0) {
    const Node& node = nodes_[cur];
    {
      // One I/O per visited first-level node (its metadata block).
      auto meta = pool_->Fetch(node.meta_page);
      if (!meta.ok()) return meta.status();
    }
    if (node.is_leaf) {
      for (io::PageId id : node.leaf_pages) {
        auto ref = pool_->Fetch(id);
        if (!ref.ok()) return ref.status();
        const io::Page& p = ref.value().page();
        const uint32_t count = p.ReadAt<uint32_t>(0);
        // Branchless kernel over the whole page, then one bulk gather of
        // the matches — no per-segment predicate branch or push_back.
        const io::ConstColumnarPageView view(p, kLeafHeader, count);
        geom::ResultBuffer& scratch = geom::GetThreadFilterScratch();
        uint32_t* idx = scratch.ReserveIndices(count);
        const uint32_t hits = geom::ActiveFilterKernel().filter_vs(
            view.strips(), count, q.x0, q.ylo, q.yhi, idx);
        view.AppendMatches(idx, hits, out);
      }
      return Status::OK();
    }
    SEGDB_RETURN_IF_ERROR(QueryNode(node, q, out));
    if (q.x0 == node.bl_x) return Status::OK();
    cur = q.x0 < node.bl_x ? node.left : node.right;
    if (cur >= 0) {
      // Hint the child's pages before its PSTs are searched; staged pages
      // are charged on first Fetch, so I/O counts stay exact.
      const Node& next = nodes_[cur];
      ahead.clear();
      ahead.push_back(next.meta_page);
      if (next.is_leaf) {
        ahead.insert(ahead.end(), next.leaf_pages.begin(),
                     next.leaf_pages.end());
      }
      pool_->Prefetch(ahead);
    }
  }
  return Status::OK();
}

uint64_t TwoLevelBinaryIndex::page_count() const {
  uint64_t total = 0;
  // Walk live nodes only.
  std::vector<int32_t> stack;
  if (root_ >= 0) stack.push_back(root_);
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    total += 1 + node.leaf_pages.size();
    if (node.c) total += node.c->page_count();
    if (node.l) total += node.l->page_count();
    if (node.r) total += node.r->page_count();
    if (node.left >= 0) stack.push_back(node.left);
    if (node.right >= 0) stack.push_back(node.right);
  }
  return total;
}

uint32_t TwoLevelBinaryIndex::SubtreeHeight(int32_t idx) const {
  if (idx < 0) return 0;
  const Node& node = nodes_[idx];
  return 1 + std::max(SubtreeHeight(node.left), SubtreeHeight(node.right));
}

uint32_t TwoLevelBinaryIndex::height() const { return SubtreeHeight(root_); }

Status TwoLevelBinaryIndex::CheckSubtree(int32_t idx, const int64_t* lo,
                                         const int64_t* hi,
                                         uint64_t* total) const {
  const Node& node = nodes_[idx];
  uint64_t count = 0;
  if (node.is_leaf) {
    count = node.leaf_segments.size();
    for (const Segment& s : node.leaf_segments) {
      if (lo != nullptr && s.x1 <= *lo) {
        return Status::Corruption("leaf segment crosses an ancestor line");
      }
      if (hi != nullptr && s.x2 >= *hi) {
        return Status::Corruption("leaf segment crosses an ancestor line");
      }
    }
  } else {
    if (lo != nullptr && node.bl_x <= *lo) {
      return Status::Corruption("base line outside ancestor slab");
    }
    if (hi != nullptr && node.bl_x >= *hi) {
      return Status::Corruption("base line outside ancestor slab");
    }
    if (node.c) {
      SEGDB_RETURN_IF_ERROR(node.c->CheckInvariants());
      std::vector<pst::PointRecord> points;
      SEGDB_RETURN_IF_ERROR(node.c->CollectAll(&points));
      for (const auto& p : points) {
        if (p.x > p.y) {
          return Status::Corruption("C(v) interval with lo > hi");
        }
      }
      count += node.c->size();
    }
    // The L(v)/R(v) partition: L holds exactly the crossing segments with a
    // non-degenerate left part, R the ones with a non-degenerate right
    // part, and segments with both live in both (matched by id below).
    uint64_t crossing = 0;
    std::unordered_set<uint64_t> both_from_l, both_from_r;
    if (node.l) {
      SEGDB_RETURN_IF_ERROR(node.l->CheckInvariants());
      std::vector<Segment> ls;
      SEGDB_RETURN_IF_ERROR(node.l->CollectAll(&ls));
      for (const Segment& s : ls) {
        if (!(s.x1 < node.bl_x && s.x2 >= node.bl_x)) {
          return Status::Corruption("L(v) member does not cross from the left");
        }
        if ((lo != nullptr && s.x1 <= *lo) ||
            (hi != nullptr && s.x2 >= *hi)) {
          return Status::Corruption("L(v) member escapes the ancestor slab");
        }
        if (s.x2 > node.bl_x) both_from_l.insert(s.id);
      }
      crossing += node.l->size();
    }
    if (node.r) {
      SEGDB_RETURN_IF_ERROR(node.r->CheckInvariants());
      std::vector<Segment> rs;
      SEGDB_RETURN_IF_ERROR(node.r->CollectAll(&rs));
      for (const Segment& s : rs) {
        if (!(s.x1 <= node.bl_x && s.x2 > node.bl_x)) {
          return Status::Corruption(
              "R(v) member does not cross to the right");
        }
        if ((lo != nullptr && s.x1 <= *lo) ||
            (hi != nullptr && s.x2 >= *hi)) {
          return Status::Corruption("R(v) member escapes the ancestor slab");
        }
        if (s.x1 < node.bl_x) {
          both_from_r.insert(s.id);
        } else {
          ++crossing;  // only in R
        }
      }
    }
    if (both_from_l != both_from_r) {
      return Status::Corruption(
          "segments crossing bl(v) on both sides not mirrored in L and R");
    }
    count += crossing;
    // BB[alpha] balance: exact at build time (median-endpoint split gives
    // each side at most half), each counted update adds one unit of slack.
    const uint64_t left_size =
        node.left >= 0 ? nodes_[node.left].subtree_size : 0;
    const uint64_t right_size =
        node.right >= 0 ? nodes_[node.right].subtree_size : 0;
    if (2 * std::max(left_size, right_size) >
        node.subtree_size + node.updates_since_rebuild) {
      return Status::Corruption("BB[alpha] balance bound violated");
    }
    if (node.left >= 0) {
      uint64_t sub = 0;
      SEGDB_RETURN_IF_ERROR(CheckSubtree(node.left, lo, &node.bl_x, &sub));
      count += sub;
    }
    if (node.right >= 0) {
      uint64_t sub = 0;
      SEGDB_RETURN_IF_ERROR(CheckSubtree(node.right, &node.bl_x, hi, &sub));
      count += sub;
    }
  }
  if (count != node.subtree_size) {
    return Status::Corruption("subtree_size bookkeeping mismatch");
  }
  *total = count;
  return Status::OK();
}

Status TwoLevelBinaryIndex::CheckInvariants() const {
  if (root_ < 0) {
    return size_ == 0 ? Status::OK() : Status::Corruption("size_ mismatch");
  }
  uint64_t total = 0;
  SEGDB_RETURN_IF_ERROR(CheckSubtree(root_, nullptr, nullptr, &total));
  if (total != size_) return Status::Corruption("size_ mismatch");
  return Status::OK();
}

}  // namespace segdb::core
