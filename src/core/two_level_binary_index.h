// Solution A — Section 3 of the paper (Theorem 1).
//
// First level: a balanced binary tree over vertical base lines. The root's
// base line bl(r) is the median of all segment-endpoint x-coordinates;
// segments intersecting bl(r) stay at the root, the rest recurse left /
// right. Each internal node v owns three second-level structures:
//
//   C(v) — segments lying ON bl(v) (vertical, x == bl(v)): 1-D intervals
//          indexed as points (lo, hi) in a PointPst; a VS query on the
//          line is the 3-sided query lo <= yhi, hi >= ylo.
//   L(v) — left parts of segments crossing bl(v): a LinePst with base
//          bl(v) extending left. Segments are stored whole (splitting at
//          the crossing point would need rational coordinates); the PST's
//          half-plane query semantics make that equivalent.
//   R(v) — right parts, symmetric.
//
// A query x = x0 descends the unique root-to-leaf path: at each node it
// searches L(v) (x0 left of bl(v)) or R(v) (right), or, when x0 hits
// bl(v) exactly, C(v) plus both PSTs and stops. Leaves hold <= B segments
// in raw pages and are scanned.
//
// Costs (Theorem 1): O(n) blocks; query O(log2 n (log_B n + IL*(B)) + t);
// update O(log2 n + log_B^2 n / B) amortized. Updates here use
// BB[alpha]-style partial rebuilding of first-level subtrees (the paper's
// BB[alpha] rotations realized by whole-subtree rebuilds, which amortize
// to the same bound and keep the second-level structures packed).
//
// First-level nodes are mirrored to one disk page each and that page is
// fetched on every visit, so buffer-pool misses equal the paper's I/O
// count even though the directory also lives in memory.
#ifndef SEGDB_CORE_TWO_LEVEL_BINARY_INDEX_H_
#define SEGDB_CORE_TWO_LEVEL_BINARY_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/segment_index.h"
#include "io/buffer_pool.h"
#include "pst/line_pst.h"
#include "pst/point_pst.h"
#include "util/status.h"

namespace segdb::core {

struct TwoLevelBinaryOptions {
  // Second-level PST fan-out: 0 = packed/auto (Lemma 3 behaviour, the
  // default), 2 = the paper's plain binary PSTs (Lemma 2).
  uint32_t pst_fanout = 0;
  // Leaf capacity in segments: 0 = one page's worth.
  uint32_t leaf_capacity = 0;
  // First-level partial-rebuild trigger: a child subtree may hold at most
  // this fraction of its parent's segments before the subtree is rebuilt.
  double rebuild_fraction = 0.7;
};

class TwoLevelBinaryIndex final : public SegmentIndex {
 public:
  TwoLevelBinaryIndex(io::BufferPool* pool,
                      TwoLevelBinaryOptions options = {});
  ~TwoLevelBinaryIndex() override;

  TwoLevelBinaryIndex(const TwoLevelBinaryIndex&) = delete;
  TwoLevelBinaryIndex& operator=(const TwoLevelBinaryIndex&) = delete;

  Status BulkLoad(std::span<const geom::Segment> segments) override;
  Status Insert(const geom::Segment& segment) override;
  Status Erase(const geom::Segment& segment) override;
  Status Query(const VerticalSegmentQuery& query,
               std::vector<geom::Segment>* out) const override;
  uint64_t size() const override { return size_; }
  uint64_t page_count() const override;
  std::string name() const override { return "two-level-binary"; }

  // First-level height (experiment instrumentation).
  uint32_t height() const;

  // Structural self-check (tests): BB[alpha] balance bookkeeping, the
  // L(v)/R(v)/C(v) partition at every base line, slab containment, and
  // every second-level structure's own invariants.
  Status CheckInvariants() const override;

 private:
  struct Node {
    bool is_leaf = false;
    int64_t bl_x = 0;  // base line (internal nodes)
    int32_t left = -1;
    int32_t right = -1;
    uint64_t subtree_size = 0;
    // Inserts + erases absorbed since the subtree was last (re)built: the
    // amortization guard for partial rebuilding, and the slack term of the
    // audited balance bound 2*max(|left|, |right|) <= size + updates
    // (exact at build time by the median-endpoint split, maintained by
    // every update counting here).
    uint64_t updates_since_rebuild = 0;
    io::PageId meta_page = io::kInvalidPageId;
    std::unique_ptr<pst::PointPst> c;  // segments on the base line
    std::unique_ptr<pst::LinePst> l;   // crossing, left parts
    std::unique_ptr<pst::LinePst> r;   // crossing, right parts
    std::vector<io::PageId> leaf_pages;
    std::vector<geom::Segment> leaf_segments;  // mirror of leaf pages
  };

  uint32_t LeafCapacity() const;
  pst::LinePstOptions PstOptions() const;

  // Takes a node slot from the free list (or grows the arena).
  int32_t AllocNode();
  // Builds a subtree for `segments`. Fault-atomic: on failure every page
  // and arena slot the partial build claimed is released before the error
  // returns, so a failed build is a no-op on the index.
  Result<int32_t> BuildSubtree(std::vector<geom::Segment> segments);
  Status BuildSubtreeAt(int32_t idx, std::vector<geom::Segment> segments);
  Status FreeSubtree(int32_t idx);
  Status CollectSubtree(int32_t idx, std::vector<geom::Segment>* out) const;
  Status WriteLeafPages(Node* node);
  // Inserts into the second-level structures of internal node `idx`;
  // the segment must intersect the node's base line.
  Status InsertAtNode(int32_t idx, const geom::Segment& s);
  Status QueryNode(const Node& node, const VerticalSegmentQuery& q,
                   std::vector<geom::Segment>* out) const;
  Status CheckSubtree(int32_t idx, const int64_t* lo, const int64_t* hi,
                      uint64_t* total) const;
  uint32_t SubtreeHeight(int32_t idx) const;

  io::BufferPool* pool_;
  TwoLevelBinaryOptions options_;
  std::vector<Node> nodes_;
  std::vector<int32_t> free_nodes_;
  int32_t root_ = -1;
  uint64_t size_ = 0;
};

}  // namespace segdb::core

#endif  // SEGDB_CORE_TWO_LEVEL_BINARY_INDEX_H_
