#include "core/durable_engine.h"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <type_traits>
#include <utility>

#include "util/check.h"

namespace segdb::core {

namespace {

Status EnginePoisoned() {
  return Status::FailedPrecondition(
      "engine is poisoned after a failed commit; recover from the WAL");
}

}  // namespace

DurableEngine::DurableEngine(io::BufferPool* pool, io::DiskManager* device,
                             IndexFactory factory,
                             const DurableEngineOptions& options)
    : pool_(pool),
      device_(device),
      factory_(std::move(factory)),
      options_(options) {
  SEGDB_CHECK(options_.checkpoint_every >= 1);
}

DurableEngine::~DurableEngine() {
  // Detach the spill sink before it dies. Anything still parked in it —
  // spilled bytes, deferred frees — is uncommitted or post-commit state
  // the WAL already covers; the inner index (destroyed after this) frees
  // its pages straight to the device again.
  pool_->set_writeback_sink(nullptr);
}

Result<std::unique_ptr<DurableEngine>> DurableEngine::Create(
    io::BufferPool* pool, io::DiskManager* device, IndexFactory factory,
    const DurableEngineOptions& options) {
  Result<std::unique_ptr<io::WriteAheadLog>> wal =
      io::WriteAheadLog::Create(device, options.wal);
  if (!wal.ok()) return wal.status();
  std::unique_ptr<DurableEngine> engine(
      new DurableEngine(pool, device, std::move(factory), options));
  engine->wal_ = std::move(wal.value());
  engine->index_ = engine->factory_(pool);
  engine->root_.store(engine->index_.get(), std::memory_order_release);
  pool->set_writeback_sink(&engine->spill_);
  return engine;
}

Result<std::unique_ptr<DurableEngine>> DurableEngine::Open(
    io::BufferPool* pool, io::DiskManager* device, io::PageId anchor,
    IndexFactory factory, const DurableEngineOptions& options) {
  Result<std::unique_ptr<io::WriteAheadLog>> wal =
      io::WriteAheadLog::Open(device, anchor, options.wal);
  if (!wal.ok()) return wal.status();
  std::unique_ptr<DurableEngine> engine(
      new DurableEngine(pool, device, std::move(factory), options));
  engine->wal_ = std::move(wal.value());
  engine->index_ = engine->factory_(pool);
  engine->root_.store(engine->index_.get(), std::memory_order_release);
  pool->set_writeback_sink(&engine->spill_);
  return engine;
}

void DurableEngine::SimulateCrash() {
  poisoned_ = true;
  root_.store(nullptr, std::memory_order_release);
  // The index destructor frees its pages through the pool; with the sink
  // still attached those frees park in spill_ (RAM) and die with the
  // engine, never reaching the device — exactly what power loss does.
  index_.reset();
  pool_->set_writeback_sink(nullptr);
}

Status DurableEngine::BulkLoad(std::span<const geom::Segment> segments) {
  // SEMA-OK: virtual inner index; bound matches the wrapped structure
  SEGDB_IO_BOUND("scan");
  if (poisoned_) return EnginePoisoned();
  // Build aside: readers keep hitting the old root at full speed while the
  // replacement is constructed.
  std::unique_ptr<SegmentIndex> next = factory_(pool_);
  SEGDB_RETURN_IF_ERROR(next->BulkLoad(segments));
  // Publish with one atomic swap; new queries see the new root instantly.
  root_.store(next.get(), std::memory_order_release);
  std::unique_ptr<SegmentIndex> retired = std::move(index_);
  // The root store above is the real publication point; this is ownership
  // bookkeeping. A later commit failure poisons the engine instead of
  // rolling back — crash semantics, recovered via the WAL.
  // SEMA-OK: ownership handoff after atomic publication; failure poisons
  index_ = std::move(next);
  // Wait out readers pinned to the pre-swap epoch, then destroy the old
  // structure: its page frees route through the spill sink as deferred
  // frees, applied only after this mutation's commit lands.
  epochs_.AdvanceAndWait();
  retired.reset();
  return CommitMutation(kOpBulkLoad, segments);
}

Status DurableEngine::Insert(const geom::Segment& segment) {
  // SEMA-OK: virtual inner index; bound matches the wrapped structure
  SEGDB_IO_BOUND("scan");
  if (poisoned_) return EnginePoisoned();
  // A failed inner op commits nothing: the index is fault-atomic, so the
  // logical state is unchanged and there is nothing to log.
  SEGDB_RETURN_IF_ERROR(index_->Insert(segment));
  return CommitMutation(kOpInsert, std::span<const geom::Segment>(&segment, 1));
}

Status DurableEngine::Erase(const geom::Segment& segment) {
  // SEMA-OK: virtual inner index; bound matches the wrapped structure
  SEGDB_IO_BOUND("scan");
  if (poisoned_) return EnginePoisoned();
  SEGDB_RETURN_IF_ERROR(index_->Erase(segment));
  return CommitMutation(kOpErase, std::span<const geom::Segment>(&segment, 1));
}

Status DurableEngine::Query(const VerticalSegmentQuery& query,
                            std::vector<geom::Segment>* out) const {
  // SEMA-OK: virtual inner index; bound matches the wrapped structure
  SEGDB_IO_BOUND("log", "sqrt", "t/B");
  const EpochManager::Guard guard = epochs_.Pin();
  SegmentIndex* root = root_.load(std::memory_order_acquire);
  return root->Query(query, out);
}

uint64_t DurableEngine::size() const {
  const EpochManager::Guard guard = epochs_.Pin();
  return root_.load(std::memory_order_acquire)->size();
}

uint64_t DurableEngine::page_count() const {
  const EpochManager::Guard guard = epochs_.Pin();
  return root_.load(std::memory_order_acquire)->page_count();
}

std::string DurableEngine::name() const {
  const EpochManager::Guard guard = epochs_.Pin();
  return "durable+" + root_.load(std::memory_order_acquire)->name();
}

Status DurableEngine::CheckInvariants() const {
  const EpochManager::Guard guard = epochs_.Pin();
  return root_.load(std::memory_order_acquire)->CheckInvariants();
}

Status DurableEngine::ReplayCommits(
    std::span<const io::RecoveredCommit> commits) {
  if (commits_acked_ != 0) {
    return Status::FailedPrecondition(
        "ReplayCommits requires a fresh engine (no commits yet)");
  }
  for (const io::RecoveredCommit& commit : commits) {
    Result<LoggedOp> logged = DecodeOp(commit.payload);
    if (!logged.ok()) return logged.status();
    const LoggedOp& op = logged.value();
    switch (op.op) {
      case kOpInsert:
        if (op.segments.size() != 1) {
          return Status::Corruption("insert payload with bad arity");
        }
        SEGDB_RETURN_IF_ERROR(Insert(op.segments[0]));
        break;
      case kOpErase:
        if (op.segments.size() != 1) {
          return Status::Corruption("erase payload with bad arity");
        }
        SEGDB_RETURN_IF_ERROR(Erase(op.segments[0]));
        break;
      case kOpBulkLoad:
        SEGDB_RETURN_IF_ERROR(BulkLoad(op.segments));
        break;
      default:
        return Status::Corruption("unknown logged op");
    }
  }
  return Status::OK();
}

std::vector<uint8_t> DurableEngine::EncodeOp(
    uint8_t op, std::span<const geom::Segment> segments) {
  static_assert(std::is_trivially_copyable_v<geom::Segment>);
  std::vector<uint8_t> payload(1 + sizeof(uint32_t) +
                               segments.size() * sizeof(geom::Segment));
  payload[0] = op;
  const uint32_t count = static_cast<uint32_t>(segments.size());
  std::memcpy(payload.data() + 1, &count, sizeof(count));
  if (!segments.empty()) {
    std::memcpy(payload.data() + 1 + sizeof(uint32_t), segments.data(),
                segments.size() * sizeof(geom::Segment));
  }
  return payload;
}

Result<DurableEngine::LoggedOp> DurableEngine::DecodeOp(
    std::span<const uint8_t> payload) {
  if (payload.size() < 1 + sizeof(uint32_t)) {
    return Status::Corruption("logged op payload too short");
  }
  LoggedOp op;
  op.op = payload[0];
  uint32_t count = 0;
  std::memcpy(&count, payload.data() + 1, sizeof(count));
  if (payload.size() !=
      1 + sizeof(uint32_t) + uint64_t{count} * sizeof(geom::Segment)) {
    return Status::Corruption("logged op payload has a bad size");
  }
  op.segments.resize(count);
  if (count > 0) {
    std::memcpy(op.segments.data(), payload.data() + 1 + sizeof(uint32_t),
                uint64_t{count} * sizeof(geom::Segment));
  }
  return op;
}

Status DurableEngine::CommitMutation(
    uint8_t op, std::span<const geom::Segment> segments) {
  // The op's full dirty footprint: pages still resident in the pool plus
  // pages it evicted into the spill mid-op. Both lists are ascending by
  // id and disjoint (a spilled page re-fetched by the op moved back into
  // the pool), so one merge yields the canonical image order.
  std::vector<io::PageImage> images;
  pool_->CollectDirty(&images);
  std::vector<io::PageImage> spilled;
  spill_.CollectImages(&spilled);
  if (!spilled.empty()) {
    std::vector<io::PageImage> merged;
    merged.reserve(images.size() + spilled.size());
    std::merge(std::make_move_iterator(images.begin()),
               std::make_move_iterator(images.end()),
               std::make_move_iterator(spilled.begin()),
               std::make_move_iterator(spilled.end()),
               std::back_inserter(merged),
               [](const io::PageImage& a, const io::PageImage& b) {
                 return a.id < b.id;
               });
    images = std::move(merged);
  }
  const std::vector<uint8_t> payload = EncodeOp(op, segments);
  Result<uint64_t> lsn = wal_->Commit(images, payload);
  if (!lsn.ok()) {
    // The log (and with it the device) may hold any prefix of the commit:
    // that is a crash, not a recoverable error. Refuse further mutations;
    // io::Recover() re-derives the committed state.
    poisoned_ = true;
    return lsn.status();
  }
  SEGDB_COMMIT_POINT();
  ++commits_acked_;
  ++commits_since_checkpoint_;
  // SEMA-OK: post-commit writeback absorbs every failure by re-logging
  WritebackAndMaybeCheckpoint();
  return Status::OK();
}

void DurableEngine::WritebackAndMaybeCheckpoint() {
  // Post-commit: the WAL barrier has already made this commit durable, so
  // nothing below may fail the mutation. A writeback error leaves the
  // affected pages dirty (pool) or spilled, and they simply ride along
  // into the next commit's image set — self-healing by re-logging.
  Status writeback = pool_->FlushAll();
  if (writeback.ok()) writeback = spill_.FlushToDevice(device_);
  if (!writeback.ok()) {
    ++writeback_failures_;
    return;
  }
  // Frees are post-commit by protocol: the device free list only ever
  // reflects committed state.
  spill_.ApplyDeferredFrees(device_);
  if (commits_since_checkpoint_ >= options_.checkpoint_every) {
    // Checkpoint barriers the writebacks above, then truncates the log. A
    // failed attempt is absorbed — the chain keeps growing until one
    // lands (a poisoned WAL resurfaces on the next Commit).
    if (wal_->Checkpoint().ok()) commits_since_checkpoint_ = 0;
  }
}

}  // namespace segdb::core
