// DurableEngine: a crash-safe shell around any core::SegmentIndex
// (DESIGN.md section 18). It is the layer where the paper's in-memory /
// on-page index structures meet a device that can fail mid-write:
//
//   - Every successful mutation becomes one WAL commit: the full images of
//     the pages the op dirtied (pool dirty set + mid-op spill evictions),
//     then a commit record carrying the logical op, then one barrier. The
//     op is acknowledged only after the barrier (SEGDB_COMMIT_POINT).
//   - Writeback is strictly post-commit, so the device outside the log
//     always holds a committed prefix (NO-STEAL via io::DirtyPageSpill,
//     which the engine installs as the pool's WritebackSink).
//   - BulkLoad is build-aside-then-swap: the replacement index is built to
//     the side, published with one atomic root swap, and the retired
//     structure is destroyed only after EpochManager::AdvanceAndWait()
//     confirms every reader that could hold it has drained. Queries pin an
//     epoch and never block on a rebuild.
//
// After a crash: io::Recover() replays the log onto the device, and the
// committed logical state is rebuilt by replaying the recovered commit
// payloads (ReplayCommits) — each payload is a self-contained op
// descriptor, so an oracle can replay the same stream for differential
// checking (tests/crash_recovery_fuzz_test.cc).
//
// Concurrency contract: mutations are single-writer (like every index in
// src/core); Query is safe from any number of threads concurrently with
// one mutator. Post-commit writeback failures are absorbed — the dirty
// pages simply ride along into the next commit's image set — but a WAL
// commit failure poisons the engine (the log may be part-written, which is
// exactly a crash: recover, don't retry).
#ifndef SEGDB_CORE_DURABLE_ENGINE_H_
#define SEGDB_CORE_DURABLE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/epoch.h"
#include "core/segment_index.h"
#include "io/buffer_pool.h"
#include "io/recovery.h"
#include "io/wal.h"
#include "util/status.h"

namespace segdb::core {

struct DurableEngineOptions {
  io::WalOptions wal;
  // Checkpoint (truncate the log) every N acknowledged commits. The sweet
  // spot trades log-chain length against anchor-swap barriers.
  uint32_t checkpoint_every = 8;
};

class DurableEngine final : public SegmentIndex {
 public:
  // Logical op descriptors carried in WAL commit payloads.
  static constexpr uint8_t kOpInsert = 1;
  static constexpr uint8_t kOpErase = 2;
  static constexpr uint8_t kOpBulkLoad = 3;

  using IndexFactory =
      std::function<std::unique_ptr<SegmentIndex>(io::BufferPool*)>;

  // Formats a fresh WAL on `device`, installs the engine's spill sink on
  // `pool`, and builds an empty inner index via `factory`. The pool must
  // be backed by `device`, and both must outlive the engine.
  static Result<std::unique_ptr<DurableEngine>> Create(
      io::BufferPool* pool, io::DiskManager* device, IndexFactory factory,
      const DurableEngineOptions& options = {});

  // Attaches to an existing, already-recovered (empty) WAL anchored at
  // `anchor`. The inner index starts empty; rebuild logical state with
  // ReplayCommits.
  static Result<std::unique_ptr<DurableEngine>> Open(
      io::BufferPool* pool, io::DiskManager* device, io::PageId anchor,
      IndexFactory factory, const DurableEngineOptions& options = {});

  ~DurableEngine() override;

  // SegmentIndex interface. Mutations commit to the WAL before returning
  // OK; a failed index op (e.g. erasing an absent segment) commits
  // nothing. Query pins an epoch and reads whatever root is published.
  Status BulkLoad(std::span<const geom::Segment> segments) override;
  Status Insert(const geom::Segment& segment) override;
  Status Erase(const geom::Segment& segment) override;
  Status Query(const VerticalSegmentQuery& query,
               std::vector<geom::Segment>* out) const override;
  uint64_t size() const override;
  uint64_t page_count() const override;
  std::string name() const override;
  Status CheckInvariants() const override;

  // Replays recovered commit payloads through the normal mutation path,
  // in order. The engine must be fresh (no mutations yet): the replayed
  // stream then reconstructs exactly the committed logical state, and the
  // engine's own device converges to the reference state for the same
  // prefix (bit-compared by the crash harness).
  Status ReplayCommits(std::span<const io::RecoveredCommit> commits);

  // Crash-simulation hook (tests/crash_recovery_fuzz_test.cc): tears the
  // inner index down the way a process death would. The spill sink stays
  // attached while the index dies, so its page frees divert into RAM and
  // the device keeps the exact state it held at the failure — then the
  // sink is detached and the engine refuses all further ops.
  void SimulateCrash();

  // Mutations acknowledged (== WAL commit records this engine wrote).
  uint64_t commits_acked() const { return commits_acked_; }
  // Commits since the last successful checkpoint == the number of commit
  // records the current WAL chain holds (the crash harness checks the
  // recovered chain length against this).
  uint64_t commits_since_checkpoint() const {
    return commits_since_checkpoint_;
  }
  // Post-commit writeback attempts absorbed; the pages re-log next commit.
  uint64_t writeback_failures() const { return writeback_failures_; }
  bool poisoned() const { return poisoned_; }
  io::PageId wal_anchor() const { return wal_->anchor_page(); }
  io::WalStats wal_stats() const { return wal_->stats(); }
  const io::DirtyPageSpill& spill() const { return spill_; }
  io::WriteAheadLog* wal() { return wal_.get(); }
  EpochManager& epochs() const { return epochs_; }

  // Commit-payload codec. Public and static: the crash harness decodes
  // recovered payloads to drive its oracle replay.
  struct LoggedOp {
    uint8_t op = 0;
    std::vector<geom::Segment> segments;
  };
  static std::vector<uint8_t> EncodeOp(
      uint8_t op, std::span<const geom::Segment> segments);
  static Result<LoggedOp> DecodeOp(std::span<const uint8_t> payload);

 private:
  DurableEngine(io::BufferPool* pool, io::DiskManager* device,
                IndexFactory factory, const DurableEngineOptions& options);

  // Collects the op's full dirty footprint (pool dirty frames + spill),
  // commits it with the encoded op, and runs post-commit writeback (and
  // every checkpoint_every-th commit, a log truncation).
  Status CommitMutation(uint8_t op, std::span<const geom::Segment> segments);
  void WritebackAndMaybeCheckpoint();

  io::BufferPool* const pool_;
  io::DiskManager* const device_;
  const IndexFactory factory_;
  const DurableEngineOptions options_;

  io::DirtyPageSpill spill_;
  std::unique_ptr<io::WriteAheadLog> wal_;

  // Single-writer state (the mutation path).
  std::unique_ptr<SegmentIndex> index_;
  bool poisoned_ = false;
  uint64_t commits_acked_ = 0;
  uint64_t commits_since_checkpoint_ = 0;
  uint64_t writeback_failures_ = 0;

  // Reader-shared state: the published root and its reclamation epochs.
  std::atomic<SegmentIndex*> root_{nullptr};
  mutable EpochManager epochs_;
};

}  // namespace segdb::core

#endif  // SEGDB_CORE_DURABLE_ENGINE_H_
