// An external-memory B+-tree over trivially-copyable records with a
// caller-supplied (possibly stateful) ordering. Every node occupies one
// disk page; all access goes through the buffer pool, so tree operations
// cost exactly their page-fetch count in the paper's I/O model.
//
// Uses in segdb:
//  * multislab lists of the segment tree G (records = Segment, ordered by
//    their intersection with a slab boundary — Section 4.2 of the paper);
//  * 1-D key/value indexing for baselines and bookkeeping.
//
// Supported operations: BulkLoad (from sorted input), Insert (with node
// splits), point/lower-bound search, ordered leaf scans, Erase (lazy: no
// node merging — segdb only requires the paper's semi-dynamic insert path,
// deletions exist for completeness and tests).
#ifndef SEGDB_BTREE_BPLUS_TREE_H_
#define SEGDB_BTREE_BPLUS_TREE_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "io/buffer_pool.h"
#include "io/columnar_page_view.h"
#include "util/status.h"
#include "util/check.h"

namespace segdb::btree {

// Compare is a stateful strict-weak-order: int operator()(a, b) returning
// <0, 0, >0. Records equal under Compare may coexist (duplicates allowed).
template <typename Record, typename Compare>
class BPlusTree {
 public:
  static_assert(std::is_trivially_copyable_v<Record>);

  BPlusTree(io::BufferPool* pool, Compare cmp)
      : pool_(pool), cmp_(std::move(cmp)) {
    const uint32_t ps = pool_->page_size();
    leaf_capacity_ =
        io::PageRecordLayout<Record>::Capacity(ps - kLeafHeaderBytes);
    internal_capacity_ =
        (ps - kInternalHeaderBytes - sizeof(io::PageId)) /
        (sizeof(Record) + sizeof(io::PageId));
    SEGDB_DCHECK(leaf_capacity_ >= 2 && internal_capacity_ >= 2)
        << "page size too small for this record type";
  }

  ~BPlusTree() { Clear().IgnoreError(); }

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  uint64_t size() const { return size_; }
  uint32_t height() const { return height_; }
  uint64_t page_count() const { return page_count_; }
  uint32_t leaf_capacity() const { return leaf_capacity_; }
  io::PageId root() const { return root_; }

  // Replaces the contents with `sorted` (must be ordered by cmp). Builds
  // packed leaves bottom-up: O(n) I/Os.
  Status BulkLoad(std::span<const Record> sorted);


  // Inserts one record, splitting nodes on overflow. O(height) I/Os.
  Status Insert(const Record& record);

  // Removes one record bitwise-equal to `record` (and cmp-equal, used to
  // locate it). Lazy: leaves may underflow; pages are freed only when a
  // leaf empties completely and the tree is a single leaf.
  // Returns NotFound when no such record exists.
  Status Erase(const Record& record);

  // Calls fn(record) for each record r with cmp(r, key) >= 0 in ascending
  // order until fn returns false or the scan ends.
  template <typename Fn>
  Status ScanFrom(const Record& key, Fn fn) const;

  // Calls fn(record) for every record in ascending order until fn returns
  // false.
  template <typename Fn>
  Status ScanAll(Fn fn) const;

  // True when a cmp-equal record exists.
  Result<bool> Contains(const Record& key) const;

  // Frees every page. The tree becomes empty.
  Status Clear();

  // Collects every record (test helper; O(n) memory).
  Result<std::vector<Record>> CollectAll() const;

  // Identifies the leaf page and slot of the first record with
  // cmp(r, key) >= 0, for structures that keep stable positions into a
  // static tree (fractional-cascading bridges). Invalidated by any update.
  struct Position {
    io::PageId leaf = io::kInvalidPageId;
    uint32_t slot = 0;
    bool found = false;  // false: key is past the last record
  };
  Result<Position> LowerBoundPosition(const Record& key) const;

  // Scans forward from an explicit position (bridge landing).
  template <typename Fn>
  Status ScanFromPosition(const Position& pos, Fn fn) const;

  // Like BulkLoad, additionally reporting where each input record landed
  // (positions->at(i) for sorted[i]). Positions stay valid until the next
  // mutation; used by structures that point into a static tree
  // (fractional-cascading bridges).
  Status BulkLoadWithPositions(std::span<const Record> sorted,
                               std::vector<Position>* positions);

  // Finds the first record satisfying a *suffix-monotone* predicate (false
  // ... false true ... true in tree order); separator copies are real
  // records, so the predicate steers the descent. Returns the position of
  // the first satisfying record and, when one exists, the record
  // immediately before it (*pred_valid false when the match is the very
  // first record). Used for order-consistent searches whose comparison
  // key exists only at query time (e.g. "y at the query abscissa").
  template <typename Pred>
  Status FindFirstWhere(Pred pred, Position* pos, Record* pred_record,
                        bool* pred_valid) const;

  // Position of the first record in tree order (found=false when empty).
  Result<Position> HeadPosition() const;

  // Reads one leaf page's records plus its neighbor links — the low-level
  // access used by cursors that walk leaves in both directions
  // (fractional-cascading bridge landings).
  struct LeafView {
    std::vector<Record> records;
    io::PageId next = io::kInvalidPageId;
    io::PageId prev = io::kInvalidPageId;
  };
  Result<LeafView> ReadLeaf(io::PageId leaf) const;

  // Audits the tree: uniform leaf depth (== height()), per-node capacity,
  // leaf ordering under cmp, separator fences bounding every subtree, the
  // doubly-linked leaf chain matching in-order traversal, and the size /
  // page-count / height counters. O(n) I/Os.
  Status CheckInvariants() const;

 private:
  static constexpr uint32_t kLeafHeaderBytes = 16;
  static constexpr uint32_t kInternalHeaderBytes = 8;

  // -- Node views ---------------------------------------------------------
  // Leaf layout:   [u8 is_leaf][u8 pad3][u32 count][PageId next][PageId prev]
  //                [records: io::PageRecordLayout<Record>, cap leaf_capacity_]
  // Internal:      [u8 is_leaf][u8 pad3][u32 count]
  //                [PageId child x (count+1)][Record sep x count]
  // The leaf record region goes through PageRecordLayout: row-major for
  // generic records, columnar strips for segment-like records with a
  // specialization. Either layout fills exactly leaf_capacity_ *
  // sizeof(Record) bytes, so capacities and page counts are layout-
  // independent. Internal separators stay row-major — they are binary-
  // searched individually, never scanned.
  // Separator semantics: sep[i] is a copy of the smallest record in
  // child[i+1]'s subtree; search descends into the first child i with
  // key < sep[i] (or the last child).

  static bool IsLeaf(const io::Page& p) { return p.ReadAt<uint8_t>(0) != 0; }
  static void SetLeaf(io::Page& p, bool leaf) {
    p.WriteAt<uint8_t>(0, leaf ? 1 : 0);
  }
  static uint32_t Count(const io::Page& p) { return p.ReadAt<uint32_t>(4); }
  static void SetCount(io::Page& p, uint32_t c) { p.WriteAt<uint32_t>(4, c); }

  static io::PageId LeafNext(const io::Page& p) {
    return p.ReadAt<io::PageId>(8);
  }
  static void SetLeafNext(io::Page& p, io::PageId id) {
    p.WriteAt<io::PageId>(8, id);
  }
  static io::PageId LeafPrev(const io::Page& p) {
    return p.ReadAt<io::PageId>(12);
  }
  static void SetLeafPrev(io::Page& p, io::PageId id) {
    p.WriteAt<io::PageId>(12, id);
  }

  uint32_t ChildOff(uint32_t i) const {
    return kInternalHeaderBytes + i * sizeof(io::PageId);
  }
  uint32_t SepOff(uint32_t i) const {
    return kInternalHeaderBytes + (internal_capacity_ + 1) * sizeof(io::PageId) +
           i * static_cast<uint32_t>(sizeof(Record));
  }

  using LeafLayout = io::PageRecordLayout<Record>;

  Record LeafRecord(const io::Page& p, uint32_t i) const {
    return LeafLayout::Read(p, kLeafHeaderBytes, leaf_capacity_, i);
  }
  void SetLeafRecord(io::Page* p, uint32_t i, const Record& r) const {
    LeafLayout::Write(p, kLeafHeaderBytes, leaf_capacity_, i, r);
  }
  void ReadLeafRecords(const io::Page& p, uint32_t first, Record* out,
                       uint32_t count) const {
    LeafLayout::ReadRange(p, kLeafHeaderBytes, leaf_capacity_, first, out,
                          count);
  }
  void WriteLeafRecords(io::Page* p, uint32_t first, const Record* src,
                        uint32_t count) const {
    LeafLayout::WriteRange(p, kLeafHeaderBytes, leaf_capacity_, first, src,
                           count);
  }
  io::PageId Child(const io::Page& p, uint32_t i) const {
    return p.ReadAt<io::PageId>(ChildOff(i));
  }
  Record Separator(const io::Page& p, uint32_t i) const {
    return p.ReadAt<Record>(SepOff(i));
  }

  // First slot in leaf with record >= key.
  uint32_t LeafLowerBound(const io::Page& leaf, const Record& key) const {
    uint32_t lo = 0, hi = Count(leaf);
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      if (cmp_(LeafRecord(leaf, mid), key) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Child index for inserting `key`: right of all cmp-equal separators, so
  // duplicates append after existing equals.
  uint32_t PickChildUpper(const io::Page& node, const Record& key) const {
    uint32_t lo = 0, hi = Count(node);
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      if (cmp_(Separator(node, mid), key) <= 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Child index for lower-bound search: left of cmp-equal separators, so
  // no cmp-equal record in an earlier leaf is skipped. Landing too far left
  // is corrected by following leaf next-pointers.
  uint32_t PickChildLower(const io::Page& node, const Record& key) const {
    uint32_t lo = 0, hi = Count(node);
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      if (cmp_(Separator(node, mid), key) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  Status FreeSubtree(io::PageId id);
  // Recursive audit step: `lo`/`hi` are inclusive cmp-fences inherited from
  // ancestor separators (null = unbounded); appends visited leaves in order.
  Status CheckSubtree(io::PageId id, uint32_t depth, const Record* lo,
                      const Record* hi, std::vector<io::PageId>* leaves,
                      uint64_t* records, uint64_t* pages) const;

  io::BufferPool* pool_;
  Compare cmp_;
  uint32_t leaf_capacity_ = 0;
  uint32_t internal_capacity_ = 0;
  io::PageId root_ = io::kInvalidPageId;
  uint32_t height_ = 0;  // 0 = empty, 1 = single leaf
  uint64_t size_ = 0;
  uint64_t page_count_ = 0;
};

// ---------------------------------------------------------------------------
// Implementation.

template <typename Record, typename Compare>
Status BPlusTree<Record, Compare>::Clear() {
  if (root_ != io::kInvalidPageId) {
    SEGDB_RETURN_IF_ERROR(FreeSubtree(root_));
    root_ = io::kInvalidPageId;
  }
  height_ = 0;
  size_ = 0;
  page_count_ = 0;
  return Status::OK();
}

template <typename Record, typename Compare>
Status BPlusTree<Record, Compare>::FreeSubtree(io::PageId id) {
  std::vector<io::PageId> children;
  {
    auto ref = pool_->Fetch(id);
    if (!ref.ok()) return ref.status();
    io::Page& p = ref.value().page();
    if (!IsLeaf(p)) {
      const uint32_t count = Count(p);
      children.resize(count + 1);
      for (uint32_t i = 0; i <= count; ++i) children[i] = Child(p, i);
    }
  }  // pin dropped before recursing: children re-fetch freely
  for (io::PageId c : children) SEGDB_RETURN_IF_ERROR(FreeSubtree(c));
  return pool_->FreePage(id);
}

template <typename Record, typename Compare>
Status BPlusTree<Record, Compare>::BulkLoad(std::span<const Record> sorted) {
  SEGDB_IO_BOUND("scan");
  return BulkLoadWithPositions(sorted, nullptr);
}

template <typename Record, typename Compare>
Status BPlusTree<Record, Compare>::BulkLoadWithPositions(
    std::span<const Record> sorted, std::vector<Position>* positions) {
  SEGDB_IO_BOUND("scan");
  SEGDB_RETURN_IF_ERROR(Clear());
  if (positions != nullptr) {
    positions->clear();
    positions->reserve(sorted.size());
  }
  if (sorted.empty()) return Status::OK();
#ifndef NDEBUG
  for (size_t i = 1; i < sorted.size(); ++i) {
    SEGDB_DCHECK(cmp_(sorted[i - 1], sorted[i]) <= 0) << "BulkLoad input not sorted";
  }
#endif

  // The build writes no member state until the commit point below; a
  // mid-build failure only has to release the pages built so far and the
  // tree stays in its (empty) post-Clear state.
  std::vector<io::PageId> built;
  auto unwind = [&](Status cause) {
    for (io::PageId id : built) pool_->FreePage(id).IgnoreError();
    if (positions != nullptr) positions->clear();
    return cause;
  };

  // Level 0: packed leaves.
  struct Entry {
    Record first;
    io::PageId id;
  };
  std::vector<Entry> level;
  io::PageId prev = io::kInvalidPageId;
  size_t i = 0;
  while (i < sorted.size()) {
    const uint32_t take = static_cast<uint32_t>(
        std::min<size_t>(leaf_capacity_, sorted.size() - i));
    auto ref = pool_->NewPage();
    if (!ref.ok()) return unwind(ref.status());
    io::Page& p = ref.value().page();
    SetLeaf(p, true);
    SetCount(p, take);
    SetLeafPrev(p, prev);
    SetLeafNext(p, io::kInvalidPageId);
    WriteLeafRecords(&p, 0, sorted.data() + i, take);
    ref.value().MarkDirty();
    const io::PageId id = ref.value().page_id();
    if (positions != nullptr) {
      for (uint32_t k = 0; k < take; ++k) {
        positions->push_back(Position{id, k, true});
      }
    }
    built.push_back(id);
    if (prev != io::kInvalidPageId) {
      { io::PageRef done = std::move(ref.value()); }  // drop pin, then fetch
      auto prev_ref = pool_->Fetch(prev);
      if (!prev_ref.ok()) return unwind(prev_ref.status());
      SetLeafNext(prev_ref.value().page(), id);
      prev_ref.value().MarkDirty();
    }
    level.push_back(Entry{sorted[i], id});
    prev = id;
    i += take;
  }
  uint32_t height = 1;

  // Upper levels.
  while (level.size() > 1) {
    std::vector<Entry> next_level;
    size_t j = 0;
    while (j < level.size()) {
      uint32_t take = static_cast<uint32_t>(
          std::min<size_t>(internal_capacity_ + 1, level.size() - j));
      // Avoid leaving a single orphan child for the last node.
      if (level.size() - j - take == 1) --take;
      auto ref = pool_->NewPage();
      if (!ref.ok()) return unwind(ref.status());
      io::Page& p = ref.value().page();
      SetLeaf(p, false);
      SetCount(p, take - 1);
      for (uint32_t k = 0; k < take; ++k) {
        p.WriteAt<io::PageId>(ChildOff(k), level[j + k].id);
        if (k > 0) p.WriteAt<Record>(SepOff(k - 1), level[j + k].first);
      }
      ref.value().MarkDirty();
      built.push_back(ref.value().page_id());
      next_level.push_back(Entry{level[j].first, ref.value().page_id()});
      j += take;
    }
    level = std::move(next_level);
    ++height;
  }
  SEGDB_COMMIT_POINT();  // nothing below can fail; publish the new tree
  root_ = level[0].id;
  height_ = height;
  size_ = sorted.size();
  page_count_ = built.size();
  return Status::OK();
}

template <typename Record, typename Compare>
Status BPlusTree<Record, Compare>::Insert(const Record& record) {
  SEGDB_IO_BOUND("log");  // descent + split cascade, both height-bounded
  if (root_ == io::kInvalidPageId) {
    auto ref = pool_->NewPage();
    if (!ref.ok()) return ref.status();
    io::Page& p = ref.value().page();
    SetLeaf(p, true);
    SetCount(p, 1);
    SetLeafNext(p, io::kInvalidPageId);
    SetLeafPrev(p, io::kInvalidPageId);
    SetLeafRecord(&p, 0, record);
    ref.value().MarkDirty();
    root_ = ref.value().page_id();
    height_ = 1;
    size_ = 1;
    page_count_ = 1;
    return Status::OK();
  }

  // Descend, remembering the path (and node fill) for splits.
  struct PathEntry {
    io::PageId id;
    uint32_t child_index;
    uint32_t count;
  };
  std::vector<PathEntry> path;
  io::PageId cur = root_;
  for (;;) {  // SEMA-LOOP: height (root-to-leaf descent)
    auto ref = pool_->Fetch(cur);
    if (!ref.ok()) return ref.status();
    io::Page& p = ref.value().page();
    if (IsLeaf(p)) break;
    const uint32_t ci = PickChildUpper(p, record);
    path.push_back(PathEntry{cur, ci, Count(p)});
    cur = Child(p, ci);
  }

  // Insert into the leaf; on overflow split and propagate. Every page the
  // split cascade can need is allocated up front, before the first byte of
  // the tree changes: an allocation failure mid-cascade would otherwise
  // leave a split leaf whose records the directory cannot reach and whose
  // insert was never counted.
  Record carry_sep{};
  io::PageId carry_child = io::kInvalidPageId;
  std::vector<io::PageRef> spare;
  size_t spare_next = 0;
  {
    auto ref = pool_->Fetch(cur);
    if (!ref.ok()) return ref.status();
    io::Page& p = ref.value().page();
    const uint32_t count = Count(p);
    // Insert after equal records (stable for duplicates).
    uint32_t pos = count;
    {
      uint32_t lo = 0, hi = count;
      while (lo < hi) {
        uint32_t mid = (lo + hi) / 2;
        if (cmp_(LeafRecord(p, mid), record) <= 0) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      pos = lo;
    }
    pos = std::min(pos, count);
    // Assemble prefix + record + suffix directly (avoids vector::insert,
    // which trips a GCC-12 -Wstringop-overflow false positive here).
    std::vector<Record> recs(count + 1);
    ReadLeafRecords(p, 0, recs.data(), pos);
    recs[pos] = record;
    if (pos < count) {
      ReadLeafRecords(p, pos, recs.data() + pos + 1, count - pos);
    }
    if (count + 1 <= leaf_capacity_) {
      WriteLeafRecords(&p, 0, recs.data(), count + 1);
      SetCount(p, count + 1);
      ref.value().MarkDirty();
      ++size_;
      return Status::OK();
    }
    // Split the leaf. One spare page per full node on the path suffix,
    // plus one for the leaf and one more when the cascade grows a root.
    uint32_t need = 1;
    size_t full_suffix = 0;
    for (auto it = path.rbegin();
         it != path.rend() && it->count == internal_capacity_; ++it) {
      ++full_suffix;
    }
    need += static_cast<uint32_t>(full_suffix);
    if (full_suffix == path.size()) ++need;  // the root splits too
    spare.reserve(need);
    // SEMA-LOOP: height (need <= height+2: one page per full ancestor)
    for (uint32_t k = 0; k < need; ++k) {
      auto sref = pool_->NewPage();
      if (!sref.ok()) {
        std::vector<io::PageId> ids;
        ids.reserve(spare.size());
        for (const io::PageRef& r : spare) ids.push_back(r.page_id());
        spare.clear();  // destroys every spare PageRef, dropping its pin
        // SEMA-LOOP: height (rolls back the height-bounded reservation)
        for (io::PageId id : ids) pool_->FreePage(id).IgnoreError();
        return sref.status();
      }
      spare.push_back(std::move(sref.value()));
    }

    const uint32_t left_n = (count + 1) / 2;
    const uint32_t right_n = count + 1 - left_n;
    io::PageRef right = std::move(spare[spare_next++]);
    io::Page& rp = right.page();
    SetLeaf(rp, true);
    SetCount(rp, right_n);
    WriteLeafRecords(&rp, 0, recs.data() + left_n, right_n);
    SetLeafPrev(rp, cur);
    SetLeafNext(rp, LeafNext(p));
    right.MarkDirty();
    const io::PageId right_id = right.page_id();
    const io::PageId old_next = LeafNext(p);
    WriteLeafRecords(&p, 0, recs.data(), left_n);
    SetCount(p, left_n);
    SetLeafNext(p, right_id);
    ref.value().MarkDirty();
    {
      // Drop both split pins at scope exit (left leaf first, matching the
      // destruction order) before fetching the old next leaf.
      io::PageRef drop_right = std::move(right);
      io::PageRef drop_left = std::move(ref.value());
    }
    if (old_next != io::kInvalidPageId) {
      auto nref = pool_->Fetch(old_next);
      if (!nref.ok()) return nref.status();
      SetLeafPrev(nref.value().page(), right_id);
      nref.value().MarkDirty();
    }
    carry_sep = recs[left_n];
    carry_child = right_id;
    ++page_count_;
  }

  // Propagate the split upward.
  while (carry_child != io::kInvalidPageId && !path.empty()) {
    const PathEntry pe = path.back();
    path.pop_back();
    auto ref = pool_->Fetch(pe.id);
    if (!ref.ok()) return ref.status();
    io::Page& p = ref.value().page();
    const uint32_t count = Count(p);
    std::vector<Record> seps(count);
    std::vector<io::PageId> kids(count + 1);
    for (uint32_t k = 0; k < count; ++k) seps[k] = Separator(p, k);
    for (uint32_t k = 0; k <= count; ++k) kids[k] = Child(p, k);
    seps.insert(seps.begin() + pe.child_index, carry_sep);
    kids.insert(kids.begin() + pe.child_index + 1, carry_child);
    if (count + 1 <= internal_capacity_) {
      SetCount(p, count + 1);
      for (uint32_t k = 0; k < count + 1; ++k) {
        p.WriteAt<Record>(SepOff(k), seps[k]);
      }
      for (uint32_t k = 0; k <= count + 1; ++k) {
        p.WriteAt<io::PageId>(ChildOff(k), kids[k]);
      }
      ref.value().MarkDirty();
      carry_child = io::kInvalidPageId;
      break;
    }
    // Split the internal node: middle separator moves up.
    const uint32_t total = count + 1;              // separators
    const uint32_t mid = total / 2;                // promoted index
    io::PageRef right = std::move(spare[spare_next++]);
    io::Page& rp = right.page();
    SetLeaf(rp, false);
    const uint32_t right_seps = total - mid - 1;
    SetCount(rp, right_seps);
    for (uint32_t k = 0; k < right_seps; ++k) {
      rp.WriteAt<Record>(SepOff(k), seps[mid + 1 + k]);
    }
    for (uint32_t k = 0; k <= right_seps; ++k) {
      rp.WriteAt<io::PageId>(ChildOff(k), kids[mid + 1 + k]);
    }
    right.MarkDirty();
    SetCount(p, mid);
    for (uint32_t k = 0; k < mid; ++k) p.WriteAt<Record>(SepOff(k), seps[k]);
    for (uint32_t k = 0; k <= mid; ++k) {
      p.WriteAt<io::PageId>(ChildOff(k), kids[k]);
    }
    ref.value().MarkDirty();
    carry_sep = seps[mid];
    carry_child = right.page_id();
    ++page_count_;
  }

  if (carry_child != io::kInvalidPageId) {
    // Grow a new root.
    io::PageRef rootref = std::move(spare[spare_next++]);
    io::Page& p = rootref.page();
    SetLeaf(p, false);
    SetCount(p, 1);
    p.WriteAt<io::PageId>(ChildOff(0), root_);
    p.WriteAt<io::PageId>(ChildOff(1), carry_child);
    p.WriteAt<Record>(SepOff(0), carry_sep);
    rootref.MarkDirty();
    root_ = rootref.page_id();
    ++height_;
    ++page_count_;
  }
  SEGDB_DCHECK(spare_next == spare.size()) << "split pre-allocation mismatch";
  ++size_;
  return Status::OK();
}

template <typename Record, typename Compare>
Status BPlusTree<Record, Compare>::Erase(const Record& record) {
  // "t/B" covers the walk over a cmp-equal duplicate group, which may
  // span leaves before the bitwise match is found.
  SEGDB_IO_BOUND("log", "t/B");
  if (root_ == io::kInvalidPageId) return Status::NotFound("empty tree");
  io::PageId cur = root_;
  for (;;) {  // SEMA-LOOP: height (root-to-leaf descent)
    auto ref = pool_->Fetch(cur);
    if (!ref.ok()) return ref.status();
    io::Page& p = ref.value().page();
    if (!IsLeaf(p)) {
      cur = Child(p, PickChildLower(p, record));
      continue;
    }
    // Walk cmp-equal records (possibly across leaves) looking for a
    // bitwise match.
    uint32_t slot = LeafLowerBound(p, record);
    io::PageRef leaf_ref = std::move(ref.value());
    for (;;) {  // SEMA-LOOP: record (cmp-equal duplicate group)
      io::Page& lp = leaf_ref.page();
      const uint32_t count = Count(lp);
      if (slot >= count) {
        const io::PageId next = LeafNext(lp);
        if (next == io::kInvalidPageId) return Status::NotFound("no match");
        auto nref = pool_->Fetch(next);
        if (!nref.ok()) return nref.status();
        leaf_ref = std::move(nref.value());
        slot = 0;
        continue;
      }
      const Record r = LeafRecord(lp, slot);
      if (cmp_(r, record) > 0) return Status::NotFound("no match");
      if (std::memcmp(&r, &record, sizeof(Record)) == 0) {
        std::vector<Record> recs(count);
        ReadLeafRecords(lp, 0, recs.data(), count);
        recs.erase(recs.begin() + slot);
        WriteLeafRecords(&lp, 0, recs.data(), count - 1);
        SetCount(lp, count - 1);
        leaf_ref.MarkDirty();
        --size_;
        return Status::OK();
      }
      ++slot;
    }
  }
}

template <typename Record, typename Compare>
Result<typename BPlusTree<Record, Compare>::Position>
BPlusTree<Record, Compare>::LowerBoundPosition(const Record& key) const {
  Position pos;
  if (root_ == io::kInvalidPageId) return pos;
  io::PageId cur = root_;
  for (;;) {  // SEMA-LOOP: height (root-to-leaf descent)
    auto ref = pool_->Fetch(cur);
    if (!ref.ok()) return ref.status();
    const io::Page& p = ref.value().page();
    if (!IsLeaf(p)) {
      cur = Child(p, PickChildLower(p, key));
      continue;
    }
    uint32_t slot = LeafLowerBound(p, key);
    if (slot >= Count(p)) {
      const io::PageId next = LeafNext(p);
      if (next == io::kInvalidPageId) return pos;  // past the end
      pos.leaf = next;
      pos.slot = 0;
      pos.found = true;
      return pos;
    }
    pos.leaf = cur;
    pos.slot = slot;
    pos.found = true;
    return pos;
  }
}

template <typename Record, typename Compare>
template <typename Pred>
Status BPlusTree<Record, Compare>::FindFirstWhere(Pred pred, Position* pos,
                                                  Record* pred_record,
                                                  bool* pred_valid) const {
  *pos = Position{};
  *pred_valid = false;
  if (root_ == io::kInvalidPageId) return Status::OK();
  io::PageId cur = root_;
  for (;;) {  // SEMA-LOOP: height (root-to-leaf descent)
    auto ref = pool_->Fetch(cur);
    if (!ref.ok()) return ref.status();
    const io::Page& p = ref.value().page();
    if (!IsLeaf(p)) {
      // First separator satisfying pred: the first match is in the child
      // left of it (or is that separator itself, reached via leaf links).
      uint32_t lo = 0, hi = Count(p);
      while (lo < hi) {
        const uint32_t mid = (lo + hi) / 2;
        if (pred(Separator(p, mid))) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      cur = Child(p, lo);
      continue;
    }
    // First satisfying slot in this leaf.
    uint32_t lo = 0, hi = Count(p);
    while (lo < hi) {
      const uint32_t mid = (lo + hi) / 2;
      if (pred(LeafRecord(p, mid))) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    if (lo < Count(p)) {
      pos->leaf = cur;
      pos->slot = lo;
      pos->found = true;
      if (lo > 0) {
        *pred_record = LeafRecord(p, lo - 1);
        *pred_valid = true;
      } else {
        const io::PageId prev = LeafPrev(p);
        if (prev != io::kInvalidPageId) {
          { io::PageRef done = std::move(ref.value()); }  // drop, then fetch
          auto pref = pool_->Fetch(prev);
          if (!pref.ok()) return pref.status();
          const io::Page& pp = pref.value().page();
          if (Count(pp) > 0) {
            *pred_record = LeafRecord(pp, Count(pp) - 1);
            *pred_valid = true;
          }
        }
      }
      return Status::OK();
    }
    // Descent may land one leaf early; hop once. If the next leaf's first
    // record still fails the predicate, no record satisfies it.
    if (Count(p) > 0) {
      *pred_record = LeafRecord(p, Count(p) - 1);
      *pred_valid = true;
    }
    const io::PageId next = LeafNext(p);
    if (next == io::kInvalidPageId) return Status::OK();
    { io::PageRef done = std::move(ref.value()); }  // drop, then fetch
    auto nref = pool_->Fetch(next);
    if (!nref.ok()) return nref.status();
    const io::Page& np = nref.value().page();
    if (Count(np) > 0 && pred(LeafRecord(np, 0))) {
      pos->leaf = next;
      pos->slot = 0;
      pos->found = true;
    }
    return Status::OK();
  }
}

template <typename Record, typename Compare>
template <typename Fn>
Status BPlusTree<Record, Compare>::ScanFromPosition(const Position& pos,
                                                    Fn fn) const {
  if (!pos.found) return Status::OK();
  io::PageId cur = pos.leaf;
  uint32_t slot = pos.slot;
  while (cur != io::kInvalidPageId) {
    auto ref = pool_->Fetch(cur);
    if (!ref.ok()) return ref.status();
    const io::Page& p = ref.value().page();
    const uint32_t count = Count(p);
    for (uint32_t i = slot; i < count; ++i) {
      if (!fn(LeafRecord(p, i))) return Status::OK();
    }
    cur = LeafNext(p);
    slot = 0;
  }
  return Status::OK();
}

template <typename Record, typename Compare>
template <typename Fn>
Status BPlusTree<Record, Compare>::ScanFrom(const Record& key, Fn fn) const {
  Result<Position> pos = LowerBoundPosition(key);
  if (!pos.ok()) return pos.status();
  return ScanFromPosition(pos.value(), fn);
}

template <typename Record, typename Compare>
Result<typename BPlusTree<Record, Compare>::Position>
BPlusTree<Record, Compare>::HeadPosition() const {
  Position pos;
  if (root_ == io::kInvalidPageId) return pos;
  io::PageId cur = root_;
  for (;;) {
    auto ref = pool_->Fetch(cur);
    if (!ref.ok()) return ref.status();
    const io::Page& p = ref.value().page();
    if (IsLeaf(p)) {
      if (Count(p) == 0) return pos;
      pos.leaf = cur;
      pos.slot = 0;
      pos.found = true;
      return pos;
    }
    cur = Child(p, 0);
  }
}

template <typename Record, typename Compare>
Result<typename BPlusTree<Record, Compare>::LeafView>
BPlusTree<Record, Compare>::ReadLeaf(io::PageId leaf) const {
  auto ref = pool_->Fetch(leaf);
  if (!ref.ok()) return ref.status();
  const io::Page& p = ref.value().page();
  if (!IsLeaf(p)) return Status::InvalidArgument("ReadLeaf: not a leaf page");
  LeafView view;
  view.records.resize(Count(p));
  ReadLeafRecords(p, 0, view.records.data(), Count(p));
  view.next = LeafNext(p);
  view.prev = LeafPrev(p);
  return view;
}

template <typename Record, typename Compare>
template <typename Fn>
Status BPlusTree<Record, Compare>::ScanAll(Fn fn) const {
  if (root_ == io::kInvalidPageId) return Status::OK();
  io::PageId cur = root_;
  for (;;) {  // SEMA-LOOP: height (leftmost root-to-leaf descent)
    auto ref = pool_->Fetch(cur);
    if (!ref.ok()) return ref.status();
    const io::Page& p = ref.value().page();
    if (IsLeaf(p)) break;
    cur = Child(p, 0);
  }
  Position pos;
  pos.leaf = cur;
  pos.slot = 0;
  pos.found = true;
  return ScanFromPosition(pos, fn);
}

template <typename Record, typename Compare>
Result<bool> BPlusTree<Record, Compare>::Contains(const Record& key) const {
  bool found = false;
  Status s = ScanFrom(key, [&](const Record& r) {
    found = (cmp_(r, key) == 0);
    return false;  // only need the first record
  });
  if (!s.ok()) return s;
  return found;
}

template <typename Record, typename Compare>
Result<std::vector<Record>> BPlusTree<Record, Compare>::CollectAll() const {
  std::vector<Record> out;
  out.reserve(size_);
  Status s = ScanAll([&](const Record& r) {
    out.push_back(r);
    return true;
  });
  if (!s.ok()) return s;
  return out;
}

template <typename Record, typename Compare>
Status BPlusTree<Record, Compare>::CheckSubtree(
    io::PageId id, uint32_t depth, const Record* lo, const Record* hi,
    std::vector<io::PageId>* leaves, uint64_t* records,
    uint64_t* pages) const {
  auto ref = pool_->Fetch(id);
  if (!ref.ok()) return ref.status();
  const io::Page& p = ref.value().page();
  ++*pages;
  if (IsLeaf(p)) {
    if (depth != height_) {
      return Status::Corruption("leaf at depth != height()");
    }
    const uint32_t count = Count(p);
    if (count > leaf_capacity_) {
      return Status::Corruption("leaf over capacity");
    }
    Record prev{};
    for (uint32_t i = 0; i < count; ++i) {
      const Record r = LeafRecord(p, i);
      if (i > 0 && cmp_(prev, r) > 0) {
        return Status::Corruption("leaf records out of order");
      }
      if ((lo != nullptr && cmp_(*lo, r) > 0) ||
          (hi != nullptr && cmp_(r, *hi) > 0)) {
        return Status::Corruption("leaf record escapes its separator fence");
      }
      prev = r;
    }
    *records += count;
    leaves->push_back(id);
    return Status::OK();
  }
  const uint32_t count = Count(p);
  if (count > internal_capacity_) {
    return Status::Corruption("internal node over capacity");
  }
  std::vector<Record> seps(count);
  std::vector<io::PageId> kids(count + 1);
  for (uint32_t i = 0; i < count; ++i) seps[i] = Separator(p, i);
  for (uint32_t i = 0; i <= count; ++i) kids[i] = Child(p, i);
  { io::PageRef done = std::move(ref.value()); }  // drop before recursing
  for (uint32_t i = 0; i < count; ++i) {
    if (i > 0 && cmp_(seps[i - 1], seps[i]) > 0) {
      return Status::Corruption("separators out of order");
    }
    if ((lo != nullptr && cmp_(*lo, seps[i]) > 0) ||
        (hi != nullptr && cmp_(seps[i], *hi) > 0)) {
      return Status::Corruption("separator escapes its ancestor fence");
    }
  }
  for (uint32_t i = 0; i <= count; ++i) {
    const Record* clo = i == 0 ? lo : &seps[i - 1];
    const Record* chi = i == count ? hi : &seps[i];
    SEGDB_RETURN_IF_ERROR(
        CheckSubtree(kids[i], depth + 1, clo, chi, leaves, records, pages));
  }
  return Status::OK();
}

template <typename Record, typename Compare>
Status BPlusTree<Record, Compare>::CheckInvariants() const {
  if (root_ == io::kInvalidPageId) {
    if (height_ != 0 || size_ != 0 || page_count_ != 0) {
      return Status::Corruption("empty tree with nonzero counters");
    }
    return Status::OK();
  }
  std::vector<io::PageId> leaves;
  uint64_t records = 0;
  uint64_t pages = 0;
  SEGDB_RETURN_IF_ERROR(
      CheckSubtree(root_, 1, nullptr, nullptr, &leaves, &records, &pages));
  if (records != size_) return Status::Corruption("size() bookkeeping mismatch");
  if (pages != page_count_) {
    return Status::Corruption("page_count() bookkeeping mismatch");
  }
  // The leaf chain must thread the leaves exactly in traversal order.
  for (size_t i = 0; i < leaves.size(); ++i) {
    auto ref = pool_->Fetch(leaves[i]);
    if (!ref.ok()) return ref.status();
    const io::Page& p = ref.value().page();
    const io::PageId want_prev = i == 0 ? io::kInvalidPageId : leaves[i - 1];
    const io::PageId want_next =
        i + 1 == leaves.size() ? io::kInvalidPageId : leaves[i + 1];
    if (LeafPrev(p) != want_prev || LeafNext(p) != want_next) {
      return Status::Corruption("leaf chain disagrees with tree order");
    }
  }
  return Status::OK();
}

}  // namespace segdb::btree

#endif  // SEGDB_BTREE_BPLUS_TREE_H_
